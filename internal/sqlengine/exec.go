package sqlengine

import (
	"context"
	"fmt"
	"math"
	"slices"

	"exlengine/internal/colbatch"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// The vectorized executor. Every operator implements execOp and streams
// colbatch.Batch chunks (~colbatch.Chunk rows); expressions are compiled
// once per statement into compiledExpr closures that evaluate a whole
// column vector per call, so the per-row work is the semantic kernel
// (applyBinary, kleeneLogic, the resolved scalar closure) with no name
// resolution, no map lookups and no interface dispatch on the tree.
//
// The executor's semantics are pinned to the legacy tree-walker: both
// call the same applyBinary/applyUnary/kleeneLogic/resolveScalarCall
// helpers, so NULL propagation (Kleene 3VL, NULL-strict comparisons and
// arithmetic, NULL output drops the row) cannot drift between them.

// compiledExpr evaluates an expression over a batch, returning one value
// per row. Column references return the batch's column slice directly
// (zero copy); computed nodes return a scratch vector owned by the node
// and overwritten on the next eval call. That is safe under the executor's
// batch-validity rule — a batch returned by next() is only live until the
// next call to next() on the same operator, and every consumer that keeps
// rows longer (drain, join build, group reps) copies them out first.
type compiledExpr interface {
	eval(b *colbatch.Batch) ([]model.Value, error)
}

// scratchVec returns buf resized to n rows, reallocating only on growth.
// Callers must overwrite every element — stale values are not cleared.
func scratchVec(buf []model.Value, n int) []model.Value {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]model.Value, n)
}

// compileEnv is the schema expressions compile against. aggs, set only
// for a groupNode's final expressions, maps canonical aggregate strings
// to pseudo-column indices in the extended (input + aggregates) batch.
type compileEnv struct {
	cols []planCol
	aggs map[string]int
}

type litC struct {
	v   model.Value
	out []model.Value
}

func (c *litC) eval(b *colbatch.Batch) ([]model.Value, error) {
	c.out = scratchVec(c.out, b.N)
	for i := range c.out {
		c.out[i] = c.v
	}
	return c.out, nil
}

type colC struct{ idx int }

func (c *colC) eval(b *colbatch.Batch) ([]model.Value, error) {
	return b.Cols[c.idx], nil
}

type unaryC struct {
	op  string
	x   compiledExpr
	out []model.Value
}

func (c *unaryC) eval(b *colbatch.Batch) ([]model.Value, error) {
	xv, err := c.x.eval(b)
	if err != nil {
		return nil, err
	}
	out := scratchVec(c.out, b.N)
	c.out = out
	for i := 0; i < b.N; i++ {
		v, err := applyUnary(c.op, xv[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type binC struct {
	op   string
	l, r compiledExpr
	out  []model.Value
}

func (c *binC) eval(b *colbatch.Batch) ([]model.Value, error) {
	lv, err := c.l.eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := c.r.eval(b)
	if err != nil {
		return nil, err
	}
	out := scratchVec(c.out, b.N)
	c.out = out
	if c.op == "and" || c.op == "or" {
		for i := 0; i < b.N; i++ {
			v, err := kleeneLogic(c.op, lv[i], rv[i])
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	for i := 0; i < b.N; i++ {
		v, err := applyBinary(c.op, lv[i], rv[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type isNullC struct {
	x   compiledExpr
	not bool
	out []model.Value
}

func (c *isNullC) eval(b *colbatch.Batch) ([]model.Value, error) {
	xv, err := c.x.eval(b)
	if err != nil {
		return nil, err
	}
	out := scratchVec(c.out, b.N)
	c.out = out
	for i := 0; i < b.N; i++ {
		out[i] = applyIsNull(xv[i], c.not)
	}
	return out, nil
}

// callC is a scalar function call with the function resolved at compile
// time. Resolution failure is kept, not raised, until a row with all
// arguments non-NULL actually needs the function — matching the legacy
// evaluator, where an unknown function over always-NULL arguments never
// surfaces.
type callC struct {
	name       string
	fn         scalarCallFunc
	resolveErr error
	args       []compiledExpr
	argv       [][]model.Value
	out        []model.Value
	buf        []model.Value
}

func (c *callC) eval(b *colbatch.Batch) ([]model.Value, error) {
	if c.argv == nil {
		c.argv = make([][]model.Value, len(c.args))
		c.buf = make([]model.Value, len(c.args))
	}
	argv, buf := c.argv, c.buf
	for i, a := range c.args {
		v, err := a.eval(b)
		if err != nil {
			return nil, err
		}
		argv[i] = v
	}
	out := scratchVec(c.out, b.N)
	c.out = out
	for i := 0; i < b.N; i++ {
		null := false
		for j := range argv {
			v := argv[j][i]
			if !v.IsValid() {
				null = true
				break
			}
			buf[j] = v
		}
		if null {
			out[i] = model.Value{} // NULL argument: NULL result
			continue
		}
		if c.resolveErr != nil {
			return nil, c.resolveErr
		}
		v, err := c.fn(buf)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// compileExpr compiles an expression against a schema. Aggregate calls
// resolve to pseudo-column references when env.aggs is set (groupNode
// finals) and are an error otherwise.
func compileExpr(e expr, env compileEnv) (compiledExpr, error) {
	switch e := e.(type) {
	case *lit:
		return &litC{v: e.v}, nil
	case *colRef:
		idx, err := resolvePlanCol(env.cols, e.qual, e.name)
		if err != nil {
			return nil, err
		}
		return &colC{idx: idx}, nil
	case *unaryExpr:
		x, err := compileExpr(e.x, env)
		if err != nil {
			return nil, err
		}
		return &unaryC{op: e.op, x: x}, nil
	case *binExpr:
		l, err := compileExpr(e.l, env)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.r, env)
		if err != nil {
			return nil, err
		}
		return &binC{op: e.op, l: l, r: r}, nil
	case *isNullExpr:
		x, err := compileExpr(e.x, env)
		if err != nil {
			return nil, err
		}
		return &isNullC{x: x, not: e.not}, nil
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			if env.aggs != nil {
				if idx, ok := env.aggs[exprString(e)]; ok {
					return &colC{idx: idx}, nil
				}
			}
			return nil, fmt.Errorf("sql: aggregate %s outside grouped context", e.name)
		}
		args := make([]compiledExpr, len(e.args))
		for i, a := range e.args {
			c, err := compileExpr(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		fn, err := resolveScalarCall(e.name)
		return &callC{name: e.name, fn: fn, resolveErr: err, args: args}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

// execOp is a streaming executor operator: next returns the next batch,
// or nil at end of stream.
type execOp interface {
	next() (*colbatch.Batch, error)
}

// opMetrics instruments an operator's output with per-kind row and batch
// counters (nil-safe: a nil registry no-ops).
type opMetrics struct {
	rows    *obs.Counter
	batches *obs.Counter
}

func newOpMetrics(reg *obs.Registry, kind string) opMetrics {
	return opMetrics{
		rows:    reg.Counter(obs.Label(obs.MetricSQLOpRows, "op", kind)),
		batches: reg.Counter(obs.Label(obs.MetricSQLBatches, "op", kind)),
	}
}

func (m opMetrics) emit(b *colbatch.Batch) {
	if b != nil {
		m.rows.Add(int64(b.N))
		m.batches.Inc()
	}
}

// batchScratch is an operator-owned output buffer. Reusing it across
// next() calls is safe under the same batch-validity rule as expression
// scratches: a returned batch is only live until the next call to next()
// on the operator that produced it.
type batchScratch struct {
	b       colbatch.Batch
	backing []model.Value
}

// get returns the scratch shaped to rows×width, all columns sliced from
// one flat backing array. Contents are stale; callers overwrite.
func (s *batchScratch) get(rows, width int) *colbatch.Batch {
	need := rows * width
	if cap(s.backing) < need {
		s.backing = make([]model.Value, need)
	}
	backing := s.backing[:need]
	if cap(s.b.Cols) < width {
		s.b.Cols = make([][]model.Value, width)
	}
	s.b.Cols = s.b.Cols[:width]
	for j := 0; j < width; j++ {
		s.b.Cols[j] = backing[j*rows : (j+1)*rows : (j+1)*rows]
	}
	s.b.N = rows
	return &s.b
}

// gatherInto copies the selected row indexes of b into the scratch.
func gatherInto(s *batchScratch, b *colbatch.Batch, sel []int) *colbatch.Batch {
	out := s.get(len(sel), len(b.Cols))
	for j, c := range b.Cols {
		col := out.Cols[j]
		for i, r := range sel {
			col[i] = c[r]
		}
	}
	return out
}

// appendBatch appends src's rows onto dst column-wise.
func appendBatch(dst, src *colbatch.Batch) {
	for j := range dst.Cols {
		dst.Cols[j] = append(dst.Cols[j], src.Cols[j]...)
	}
	dst.N += src.N
}

// drainOp consumes an operator to completion into one batch.
func drainOp(op execOp, width int) (*colbatch.Batch, error) {
	all := &colbatch.Batch{Cols: make([][]model.Value, width)}
	for {
		b, err := op.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return all, nil
		}
		appendBatch(all, b)
	}
}

// scanOp streams a table's cached columnar view in Chunk-row slices,
// applying the scan's column pruning as a zero-copy re-slice.
type scanOp struct {
	n   *scanNode
	m   opMetrics
	src *colbatch.Batch
	pos int
}

func newScanOp(n *scanNode, reg *obs.Registry) *scanOp {
	src := n.table.Batch()
	if n.proj != nil {
		src = src.Project(n.proj)
	}
	return &scanOp{n: n, m: newOpMetrics(reg, "scan"), src: src}
}

func (o *scanOp) next() (*colbatch.Batch, error) {
	if o.pos >= o.src.N {
		return nil, nil
	}
	hi := o.pos + colbatch.Chunk
	if hi > o.src.N {
		hi = o.src.N
	}
	b := o.src.Slice(o.pos, hi)
	o.pos = hi
	o.m.emit(b)
	return b, nil
}

// filterOp keeps rows whose predicate is TRUE.
type filterOp struct {
	n       *filterNode
	m       opMetrics
	child   execOp
	sel     []int
	scratch batchScratch
}

func (o *filterOp) next() (*colbatch.Batch, error) {
	for {
		b, err := o.child.next()
		if err != nil || b == nil {
			return nil, err
		}
		pred, err := o.n.ccond.eval(b)
		if err != nil {
			return nil, err
		}
		sel := o.sel[:0]
		for i := 0; i < b.N; i++ {
			if keep, ok := pred[i].AsBool(); ok && keep {
				sel = append(sel, i)
			}
		}
		o.sel = sel
		if len(sel) == 0 {
			continue
		}
		var out *colbatch.Batch
		if len(sel) == b.N {
			out = b
		} else {
			out = gatherInto(&o.scratch, b, sel)
		}
		o.m.emit(out)
		return out, nil
	}
}

// joinOp is a hash join (build on the right input, probe from the left;
// NULL keys never match) or, without keys, a block nested-loop cross
// product. Output columns are left's followed by right's.
type joinOp struct {
	n           *joinNode
	m           opMetrics
	left, right execOp

	built      bool
	rightAll   *colbatch.Batch
	index      map[string][]int
	keyb       []byte
	lsel, rsel []int
	keyBuf     []model.Value
	keyVecs    [][]model.Value
	scratch    batchScratch
}

func (o *joinOp) build() error {
	rightWidth := len(o.n.right.cols())
	all := &colbatch.Batch{Cols: make([][]model.Value, rightWidth)}
	index := make(map[string][]int)
	keyBuf := make([]model.Value, len(o.n.ckRight))
	keyVecs := make([][]model.Value, len(o.n.ckRight))
	for {
		b, err := o.right.next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if len(o.n.ckRight) > 0 {
			for i, ck := range o.n.ckRight {
				v, err := ck.eval(b)
				if err != nil {
					return err
				}
				keyVecs[i] = v
			}
			base := all.N
			for r := 0; r < b.N; r++ {
				null := false
				for i := range keyVecs {
					v := keyVecs[i][r]
					if !v.IsValid() {
						null = true
						break
					}
					keyBuf[i] = v
				}
				if null {
					continue
				}
				o.keyb = model.AppendKey(o.keyb[:0], keyBuf)
				k := string(o.keyb)
				index[k] = append(index[k], base+r)
			}
		}
		appendBatch(all, b)
	}
	o.rightAll = all
	o.index = index
	o.built = true
	return nil
}

func (o *joinOp) next() (*colbatch.Batch, error) {
	if !o.built {
		if err := o.build(); err != nil {
			return nil, err
		}
	}
	leftWidth := len(o.n.left.cols())
	rightWidth := len(o.n.right.cols())
	if o.keyBuf == nil {
		o.keyBuf = make([]model.Value, len(o.n.ckLeft))
		o.keyVecs = make([][]model.Value, len(o.n.ckLeft))
	}
	keyBuf, keyVecs := o.keyBuf, o.keyVecs
	for {
		lb, err := o.left.next()
		if err != nil || lb == nil {
			return nil, err
		}
		lsel, rsel := o.lsel[:0], o.rsel[:0]
		if len(o.n.ckLeft) > 0 {
			for i, ck := range o.n.ckLeft {
				v, err := ck.eval(lb)
				if err != nil {
					return nil, err
				}
				keyVecs[i] = v
			}
			for r := 0; r < lb.N; r++ {
				null := false
				for i := range keyVecs {
					v := keyVecs[i][r]
					if !v.IsValid() {
						null = true
						break
					}
					keyBuf[i] = v
				}
				if null {
					continue
				}
				o.keyb = model.AppendKey(o.keyb[:0], keyBuf)
				for _, rr := range o.index[string(o.keyb)] {
					lsel = append(lsel, r)
					rsel = append(rsel, rr)
				}
			}
		} else {
			for r := 0; r < lb.N; r++ {
				for rr := 0; rr < o.rightAll.N; rr++ {
					lsel = append(lsel, r)
					rsel = append(rsel, rr)
				}
			}
		}
		o.lsel, o.rsel = lsel, rsel
		if len(lsel) == 0 {
			continue
		}
		// Gather only the pruned output columns (outCols indexes the
		// left+right concatenation; nil means all).
		outIdx := o.n.outCols
		width := leftWidth + rightWidth
		if outIdx != nil {
			width = len(outIdx)
		}
		out := o.scratch.get(len(lsel), width)
		for k := 0; k < width; k++ {
			ci := k
			if outIdx != nil {
				ci = outIdx[k]
			}
			col := out.Cols[k]
			if ci < leftWidth {
				src := lb.Cols[ci]
				for i, r := range lsel {
					col[i] = src[r]
				}
			} else {
				src := o.rightAll.Cols[ci-leftWidth]
				for i, r := range rsel {
					col[i] = src[r]
				}
			}
		}
		o.m.emit(out)
		return out, nil
	}
}

// projectOp computes the output expressions and drops rows with a NULL
// output (the cube partial-function contract).
type projectOp struct {
	n       *projectNode
	m       opMetrics
	child   execOp
	sel     []int
	vecs    [][]model.Value
	passed  colbatch.Batch
	scratch batchScratch
}

func (o *projectOp) next() (*colbatch.Batch, error) {
	for {
		b, err := o.child.next()
		if err != nil || b == nil {
			return nil, err
		}
		if o.vecs == nil {
			o.vecs = make([][]model.Value, len(o.n.compiled))
		}
		vecs := o.vecs
		for i, c := range o.n.compiled {
			v, err := c.eval(b)
			if err != nil {
				return nil, err
			}
			vecs[i] = v
		}
		sel := o.sel[:0]
		for r := 0; r < b.N; r++ {
			null := false
			for i := range vecs {
				if !vecs[i][r].IsValid() {
					null = true
					break
				}
			}
			if !null {
				sel = append(sel, r)
			}
		}
		o.sel = sel
		if len(sel) == 0 {
			continue
		}
		var out *colbatch.Batch
		if len(sel) == b.N {
			o.passed.N = b.N
			o.passed.Cols = append(o.passed.Cols[:0], vecs...)
			out = &o.passed
		} else {
			out = o.scratch.get(len(sel), len(vecs))
			for j, v := range vecs {
				col := out.Cols[j]
				for i, r := range sel {
					col[i] = v[r]
				}
			}
		}
		o.m.emit(out)
		return out, nil
	}
}

// groupOp is hash aggregation. It consumes its whole input, grouping by
// the encoded key vector (rows with a NULL key are skipped) and feeding
// each aggregate's argument vector into per-group accumulators; then it
// evaluates the final expressions over the representative rows extended
// with the aggregate pseudo-columns, dropping NULL outputs.
type groupOp struct {
	n       *groupNode
	m       opMetrics
	child   execOp
	done    bool
	scratch batchScratch
	kinds   []aggKind
	states  [][]aggState // [aggregate][group ordinal]
}

// aggKind selects the inlined accumulator update for the common
// aggregations; aggOther falls back to an ops.Aggregator instance so any
// aggregation the registry knows still works, just without the fast path.
type aggKind uint8

const (
	aggSum aggKind = iota
	aggAvg
	aggCount
	aggMin
	aggMax
	aggMedian
	aggStddev
	aggProd
	aggOther
)

func aggKindOf(name string) aggKind {
	switch name {
	case "sum":
		return aggSum
	case "avg":
		return aggAvg
	case "count":
		return aggCount
	case "min":
		return aggMin
	case "max":
		return aggMax
	case "median":
		return aggMedian
	case "stddev":
		return aggStddev
	case "prod":
		return aggProd
	default:
		return aggOther
	}
}

// aggState is one group's accumulator for one aggregate: a is the
// sum/min/max/product (or Welford mean for stddev), b the Welford M2.
// Keeping groups in flat []aggState slices — one append per new group —
// replaces the per-group interface allocations the hash aggregator used
// to make.
type aggState struct {
	n   int
	a   float64
	b   float64
	vs  []float64      // median keeps the bag
	agg ops.Aggregator // aggOther fallback
}

func (st *aggState) add(kind aggKind, name string, v float64) {
	st.n++
	switch kind {
	case aggSum, aggAvg:
		st.a += v
	case aggCount:
	case aggMin:
		if st.n == 1 || v < st.a {
			st.a = v
		}
	case aggMax:
		if st.n == 1 || v > st.a {
			st.a = v
		}
	case aggMedian:
		st.vs = append(st.vs, v)
	case aggStddev:
		d := v - st.a
		st.a += d / float64(st.n)
		st.b += d * (v - st.a)
	case aggProd:
		if st.n == 1 {
			st.a = v
		} else {
			st.a *= v
		}
	default:
		if st.agg == nil {
			agg, err := ops.NewAggregator(name)
			if err != nil {
				// Names were vetted at compile time (IsAggregation/count).
				panic(err)
			}
			st.agg = agg
		}
		st.agg.Add(v)
	}
}

func (st *aggState) result(kind aggKind) float64 {
	switch kind {
	case aggSum, aggMin, aggMax, aggProd:
		return st.a
	case aggAvg:
		return st.a / float64(st.n)
	case aggCount:
		return float64(st.n)
	case aggMedian:
		vs := append([]float64(nil), st.vs...)
		slices.Sort(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	case aggStddev:
		return math.Sqrt(st.b / float64(st.n))
	default:
		return st.agg.Result()
	}
}

func (o *groupOp) next() (*colbatch.Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true

	childWidth := len(o.n.child.cols())
	reps := &colbatch.Batch{Cols: make([][]model.Value, childWidth)}
	groups := make(map[string]int)
	o.kinds = make([]aggKind, len(o.n.aggs))
	for i, spec := range o.n.aggs {
		o.kinds[i] = aggKindOf(spec.name)
	}
	o.states = make([][]aggState, len(o.n.aggs))
	ngroups := 0
	keyBuf := make([]model.Value, len(o.n.ckKeys))
	rowBuf := make([]model.Value, childWidth)
	keyVecs := make([][]model.Value, len(o.n.ckKeys))
	argVecs := make([][]model.Value, len(o.n.aggs))
	var sel []int
	var keyb []byte

	for {
		b, err := o.child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}

		// Restrict to rows with fully defined group keys before touching
		// aggregate arguments, exactly as the legacy evaluator does.
		if len(o.n.ckKeys) > 0 {
			for i, ck := range o.n.ckKeys {
				v, err := ck.eval(b)
				if err != nil {
					return nil, err
				}
				keyVecs[i] = v
			}
			sel = sel[:0]
			for r := 0; r < b.N; r++ {
				null := false
				for i := range keyVecs {
					if !keyVecs[i][r].IsValid() {
						null = true
						break
					}
				}
				if !null {
					sel = append(sel, r)
				}
			}
			if len(sel) < b.N {
				b = gatherInto(&o.scratch, b, sel)
				for i, ck := range o.n.ckKeys {
					v, err := ck.eval(b)
					if err != nil {
						return nil, err
					}
					keyVecs[i] = v
				}
			}
			if b.N == 0 {
				continue
			}
			if err := o.evalAggArgs(b, argVecs); err != nil {
				return nil, err
			}
			for r := 0; r < b.N; r++ {
				for i := range keyVecs {
					keyBuf[i] = keyVecs[i][r]
				}
				keyb = model.AppendKey(keyb[:0], keyBuf)
				// The string(...) lookup is allocation-free; the key string
				// is materialized only when a new group is created.
				g, ok := groups[string(keyb)]
				if !ok {
					g = o.newGroup(&ngroups)
					groups[string(keyb)] = g
					reps.AppendRow(b.Row(r, rowBuf))
				}
				if err := o.feed(g, argVecs, r); err != nil {
					return nil, err
				}
			}
		} else {
			if b.N == 0 {
				continue
			}
			if err := o.evalAggArgs(b, argVecs); err != nil {
				return nil, err
			}
			for r := 0; r < b.N; r++ {
				g, ok := groups[""]
				if !ok {
					g = o.newGroup(&ngroups)
					groups[""] = g
					reps.AppendRow(b.Row(r, rowBuf))
				}
				if err := o.feed(g, argVecs, r); err != nil {
					return nil, err
				}
			}
		}
	}

	// A global aggregate always has one group, even over zero rows: the
	// representative row is all-NULL, COUNT answers 0, the rest NULL.
	if len(o.n.groupBy) == 0 && ngroups == 0 {
		o.newGroup(&ngroups)
		reps.AppendRow(make([]model.Value, childWidth))
	}

	if ngroups == 0 {
		return nil, nil
	}

	// Extended batch: representative rows + one column per aggregate.
	ext := &colbatch.Batch{N: reps.N, Cols: make([][]model.Value, childWidth+len(o.n.aggs))}
	copy(ext.Cols, reps.Cols)
	for ai := range o.n.aggs {
		col := make([]model.Value, ngroups)
		for gi := range col {
			st := &o.states[ai][gi]
			if st.n == 0 {
				col[gi] = aggEmptyResult(o.n.aggs[ai].name)
			} else {
				col[gi] = model.Num(st.result(o.kinds[ai]))
			}
		}
		ext.Cols[childWidth+ai] = col
	}

	vecs := make([][]model.Value, len(o.n.finals))
	for i, c := range o.n.finals {
		v, err := c.eval(ext)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	sel = sel[:0]
	for r := 0; r < ext.N; r++ {
		null := false
		for i := range vecs {
			if !vecs[i][r].IsValid() {
				null = true
				break
			}
		}
		if !null {
			sel = append(sel, r)
		}
	}
	if len(sel) == 0 {
		return nil, nil
	}
	out := &colbatch.Batch{N: len(sel), Cols: make([][]model.Value, len(vecs))}
	for j, v := range vecs {
		col := make([]model.Value, len(sel))
		for i, r := range sel {
			col[i] = v[r]
		}
		out.Cols[j] = col
	}
	o.m.emit(out)
	return out, nil
}

// newGroup appends a zero accumulator for every aggregate and returns
// the new group's ordinal.
func (o *groupOp) newGroup(ngroups *int) int {
	g := *ngroups
	*ngroups++
	for i := range o.states {
		o.states[i] = append(o.states[i], aggState{})
	}
	return g
}

func (o *groupOp) evalAggArgs(b *colbatch.Batch, argVecs [][]model.Value) error {
	for i, spec := range o.n.aggs {
		if spec.star {
			continue
		}
		v, err := spec.carg.eval(b)
		if err != nil {
			return err
		}
		argVecs[i] = v
	}
	return nil
}

func (o *groupOp) feed(g int, argVecs [][]model.Value, r int) error {
	for i := range o.n.aggs {
		spec := &o.n.aggs[i]
		if spec.star {
			o.states[i][g].add(o.kinds[i], spec.name, 0)
			continue
		}
		v := argVecs[i][r]
		if !v.IsValid() {
			continue // nulls are not part of the bag
		}
		f, ok := v.AsNumber()
		if !ok {
			return fmt.Errorf("sql: aggregate %s over non-numeric value %v", spec.name, v)
		}
		o.states[i][g].add(o.kinds[i], spec.name, f)
	}
	return nil
}

// distinctOp removes duplicate rows across the whole stream.
type distinctOp struct {
	m       opMetrics
	child   execOp
	seen    map[string]bool
	buf     []model.Value
	keyb    []byte
	sel     []int
	scratch batchScratch
}

func (o *distinctOp) next() (*colbatch.Batch, error) {
	if o.seen == nil {
		o.seen = make(map[string]bool)
	}
	for {
		b, err := o.child.next()
		if err != nil || b == nil {
			return nil, err
		}
		sel := o.sel[:0]
		for r := 0; r < b.N; r++ {
			o.buf = b.Row(r, o.buf)
			o.keyb = model.AppendKey(o.keyb[:0], o.buf)
			if o.seen[string(o.keyb)] {
				continue
			}
			o.seen[string(o.keyb)] = true
			sel = append(sel, r)
		}
		o.sel = sel
		if len(sel) == 0 {
			continue
		}
		var out *colbatch.Batch
		if len(sel) == b.N {
			out = b
		} else {
			out = gatherInto(&o.scratch, b, sel)
		}
		o.m.emit(out)
		return out, nil
	}
}

// buildOps lowers the analyzed plan (minus the root sortNode, which the
// driver applies after materialization) into an operator tree.
func buildOps(n planNode, reg *obs.Registry) (execOp, error) {
	switch n := n.(type) {
	case *scanNode:
		return newScanOp(n, reg), nil
	case *filterNode:
		c, err := buildOps(n.child, reg)
		if err != nil {
			return nil, err
		}
		return &filterOp{n: n, m: newOpMetrics(reg, "filter"), child: c}, nil
	case *joinNode:
		l, err := buildOps(n.left, reg)
		if err != nil {
			return nil, err
		}
		r, err := buildOps(n.right, reg)
		if err != nil {
			return nil, err
		}
		kind := "hashjoin"
		if len(n.leftKeys) == 0 {
			kind = "crossjoin"
		}
		return &joinOp{n: n, m: newOpMetrics(reg, kind), left: l, right: r}, nil
	case *projectNode:
		c, err := buildOps(n.child, reg)
		if err != nil {
			return nil, err
		}
		return &projectOp{n: n, m: newOpMetrics(reg, "project"), child: c}, nil
	case *groupNode:
		c, err := buildOps(n.child, reg)
		if err != nil {
			return nil, err
		}
		return &groupOp{n: n, m: newOpMetrics(reg, "groupby"), child: c}, nil
	case *distinctNode:
		c, err := buildOps(n.child, reg)
		if err != nil {
			return nil, err
		}
		return &distinctOp{m: newOpMetrics(reg, "distinct"), child: c}, nil
	default:
		return nil, fmt.Errorf("sql: internal: cannot execute plan node %T", n)
	}
}

// evalSelectVec runs a SELECT through the vectorized pipeline:
// prepare → lower → analyze → execute → sort/materialize.
func (db *DB) evalSelectVec(ctx context.Context, s *selectStmt, r *resolver) (*Table, error) {
	ctx, span := obs.StartSpan(ctx, "sql.vec")
	p, err := db.prepareSelect(s, r)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	plan, err := db.buildPlan(s, p.sc, p.exprs, p.names, p.types)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	actx, aspan := obs.StartSpan(ctx, "sql.analyze")
	plan, err = db.analyze(actx, plan, p.sc)
	aspan.EndErr(err)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}

	root, ok := plan.(*sortNode)
	if !ok {
		err := fmt.Errorf("sql: internal: plan root is %T, want sort", plan)
		span.EndErr(err)
		return nil, err
	}
	_, espan := obs.StartSpan(ctx, "sql.exec")
	op, err := buildOps(root.child, obs.MetricsFrom(ctx))
	if err != nil {
		espan.EndErr(err)
		span.EndErr(err)
		return nil, err
	}
	all, err := drainOp(op, len(root.child.cols()))
	espan.EndErr(err)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}

	out := &Table{}
	for i := range p.names {
		out.Cols = append(out.Cols, Column{Name: p.names[i], Type: p.types[i]})
	}
	out.Rows = all.Rows()
	sortRowsBy(out.Rows, len(out.Cols), root.by)
	span.SetAttr(obs.Int("rows", len(out.Rows)))
	span.End()
	return out, nil
}
