package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// This file defines the logical plan the vectorized executor runs:
// SELECT statements lower to a small tree of relational operators
// (Scan / Filter / Project / Join / GroupBy / Sort / Distinct), the
// analyzer (analyzer.go) rewrites the tree to a fixed point, and the
// executor (exec.go) evaluates it over columnar batches.

// planCol is one output column of a plan node: the table alias it is
// visible under (empty for derived columns), its name and its type.
type planCol struct {
	qual string
	name string
	typ  ColType
}

// resolvePlanCol finds a column reference in a node's output schema with
// the same rules as scope.resolve: a qualified reference matches its
// alias only, an unqualified one must be unambiguous.
func resolvePlanCol(cols []planCol, qual, name string) (int, error) {
	found := -1
	for i, c := range cols {
		if qual != "" && c.qual != qual {
			continue
		}
		if c.name != name {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("sql: unknown column %s", name)
	}
	return found, nil
}

// planNode is a logical plan operator.
type planNode interface {
	// cols returns the node's output schema.
	cols() []planCol
	// describe returns the operator name used in spans, metrics and
	// plan rendering.
	describe() string
}

// scanNode reads a materialized table (base table, view result or
// tabular-function result) under an alias. proj, when non-nil, restricts
// the emitted columns (set by the prune_columns analyzer rule).
type scanNode struct {
	table *Table
	alias string
	proj  []int // table column indices to emit; nil = all
	out   []planCol
}

func newScanNode(t *Table, alias string) *scanNode {
	s := &scanNode{table: t, alias: alias}
	s.rebuildCols()
	return s
}

func (s *scanNode) rebuildCols() {
	s.out = s.out[:0]
	if s.proj == nil {
		for _, c := range s.table.Cols {
			s.out = append(s.out, planCol{qual: s.alias, name: c.Name, typ: c.Type})
		}
		return
	}
	for _, j := range s.proj {
		c := s.table.Cols[j]
		s.out = append(s.out, planCol{qual: s.alias, name: c.Name, typ: c.Type})
	}
}

func (s *scanNode) cols() []planCol { return s.out }
func (s *scanNode) describe() string {
	return fmt.Sprintf("scan(%s as %s)", s.table.Name, s.alias)
}

// filterNode keeps rows whose condition evaluates to TRUE (NULL and
// FALSE both drop the row, SQL's WHERE semantics).
type filterNode struct {
	child planNode
	cond  expr
	ccond compiledExpr // set by compile_exprs
}

func (f *filterNode) cols() []planCol  { return f.child.cols() }
func (f *filterNode) describe() string { return "filter(" + exprString(f.cond) + ")" }

// multiJoinNode is the pre-analysis join: the unordered FROM items plus
// the WHERE conjuncts. The reorder_joins analyzer rule replaces it with
// a left-deep joinNode tree (plus a residual filterNode).
type multiJoinNode struct {
	items     []planNode
	conjuncts []expr
	out       []planCol
}

func (m *multiJoinNode) cols() []planCol {
	if m.out == nil {
		for _, it := range m.items {
			m.out = append(m.out, it.cols()...)
		}
	}
	return m.out
}
func (m *multiJoinNode) describe() string { return fmt.Sprintf("multijoin(%d items)", len(m.items)) }

// joinNode joins two inputs. With keys it is a hash join (build on the
// right, probe from the left; NULL keys never match); without keys it is
// a nested cross product.
type joinNode struct {
	left, right         planNode
	leftKeys, rightKeys []expr
	ckLeft, ckRight     []compiledExpr // set by compile_exprs
	out                 []planCol

	// outCols, set by prune_columns, restricts the join's output to the
	// listed indexes of the left+right concatenation. Join keys are
	// evaluated on the input batches, so key columns nothing above the
	// join reads never enter the output gather.
	outCols []int
}

func (j *joinNode) cols() []planCol {
	if j.out == nil {
		full := append(append([]planCol(nil), j.left.cols()...), j.right.cols()...)
		if j.outCols == nil {
			j.out = full
		} else {
			for _, i := range j.outCols {
				j.out = append(j.out, full[i])
			}
		}
	}
	return j.out
}
func (j *joinNode) describe() string {
	if len(j.leftKeys) == 0 {
		return "crossjoin"
	}
	keys := make([]string, len(j.leftKeys))
	for i := range j.leftKeys {
		keys[i] = exprString(j.leftKeys[i]) + "=" + exprString(j.rightKeys[i])
	}
	return "hashjoin(" + strings.Join(keys, ", ") + ")"
}

// projectNode computes the SELECT output columns. Rows with a NULL
// output are dropped, matching the cube semantics of partial functions.
type projectNode struct {
	child    planNode
	exprs    []selectExpr
	out      []planCol
	compiled []compiledExpr // set by compile_exprs
}

func (p *projectNode) cols() []planCol { return p.out }
func (p *projectNode) describe() string {
	return fmt.Sprintf("project(%d exprs)", len(p.exprs))
}

// groupNode is hash aggregation: it groups its input by the GROUP BY
// keys (rows with a NULL key are skipped) and evaluates the SELECT
// expressions per group, with aggregate calls consuming the group's bag.
// Like projectNode it drops rows with NULL outputs. A query with
// aggregates but no GROUP BY forms one global group; over zero input
// rows that group still exists, where COUNT yields 0 and every other
// aggregate yields NULL.
type groupNode struct {
	child   planNode
	groupBy []expr
	exprs   []selectExpr
	out     []planCol

	// Set by compile_exprs:
	ckKeys []compiledExpr
	aggs   []aggSpec
	finals []compiledExpr // compiled over child cols + one pseudo-column per agg
}

// aggSpec is one distinct aggregate call appearing in the SELECT list.
type aggSpec struct {
	name string
	star bool
	arg  expr // nil for COUNT(*)
	carg compiledExpr
}

func (g *groupNode) cols() []planCol { return g.out }
func (g *groupNode) describe() string {
	return fmt.Sprintf("groupby(%d keys, %d aggs)", len(g.groupBy), len(g.aggs))
}

// distinctNode removes duplicate output rows (SELECT DISTINCT).
type distinctNode struct {
	child planNode
}

func (d *distinctNode) cols() []planCol  { return d.child.cols() }
func (d *distinctNode) describe() string { return "distinct" }

// sortNode orders the output. by holds output ordinals (ORDER BY); a nil
// by sorts by all columns left to right, the engine's deterministic
// default. Either way remaining columns break ties, and NULLs sort last
// (compareNullsLast), so the output order is a pure function of the
// result set.
type sortNode struct {
	child planNode
	by    []int
}

func (s *sortNode) cols() []planCol { return s.child.cols() }
func (s *sortNode) describe() string {
	if s.by == nil {
		return "sort(all)"
	}
	return fmt.Sprintf("sort(%v)", s.by)
}

// planChildren returns a node's inputs (for tree walks).
func planChildren(n planNode) []planNode {
	switch n := n.(type) {
	case *scanNode:
		return nil
	case *filterNode:
		return []planNode{n.child}
	case *multiJoinNode:
		return n.items
	case *joinNode:
		return []planNode{n.left, n.right}
	case *projectNode:
		return []planNode{n.child}
	case *groupNode:
		return []planNode{n.child}
	case *distinctNode:
		return []planNode{n.child}
	case *sortNode:
		return []planNode{n.child}
	default:
		return nil
	}
}

// renderPlan prints the plan tree (EXPLAIN-style, used in tests and
// trace attributes).
func renderPlan(n planNode) string {
	var b strings.Builder
	var walk func(n planNode, depth int)
	walk = func(n planNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.describe())
		b.WriteByte('\n')
		for _, c := range planChildren(n) {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// buildPlan lowers a validated SELECT into the initial logical plan:
// scans under a multi-join carrying the WHERE conjuncts, then grouping
// or projection, then DISTINCT, then the sort. exprs is the star-expanded
// SELECT list; sc is the scope the statement was validated against.
func (db *DB) buildPlan(s *selectStmt, sc *scope, exprs []selectExpr, names []string, types []ColType) (planNode, error) {
	items := make([]planNode, len(sc.tables))
	for i := range sc.tables {
		items[i] = newScanNode(sc.tables[i], sc.aliases[i])
	}
	var node planNode = &multiJoinNode{items: items, conjuncts: splitAnd(s.where)}

	outCols := make([]planCol, len(exprs))
	for i := range exprs {
		outCols[i] = planCol{name: names[i], typ: types[i]}
	}

	grouping := len(s.groupBy) > 0
	for _, se := range exprs {
		if hasAggregate(se.e) {
			grouping = true
		}
	}
	if grouping {
		node = &groupNode{child: node, groupBy: s.groupBy, exprs: exprs, out: outCols}
	} else {
		node = &projectNode{child: node, exprs: exprs, out: outCols}
	}
	if s.distinct {
		node = &distinctNode{child: node}
	}

	var by []int
	if len(s.orderBy) > 0 {
		idx, err := orderByIndexes(s, names)
		if err != nil {
			return nil, err
		}
		by = idx
	}
	return &sortNode{child: node, by: by}, nil
}

// orderByIndexes resolves ORDER BY expressions (output column names
// only, as in the legacy path) to output ordinals.
func orderByIndexes(s *selectStmt, names []string) ([]int, error) {
	idx := make([]int, len(s.orderBy))
	for i, oe := range s.orderBy {
		cr, ok := oe.(*colRef)
		if !ok {
			return nil, fmt.Errorf("sql: ORDER BY supports output column names only")
		}
		j := -1
		for k, n := range names {
			if n == cr.name {
				j = k
				break
			}
		}
		if j < 0 {
			return nil, fmt.Errorf("sql: ORDER BY column %s not in output", cr.name)
		}
		idx[i] = j
	}
	return idx, nil
}

// exprString renders an expression canonically; it keys aggregate
// deduplication and labels plan operators.
func exprString(e expr) string {
	switch e := e.(type) {
	case nil:
		return "true"
	case *lit:
		if !e.v.IsValid() {
			return "NULL"
		}
		return e.v.String()
	case *colRef:
		if e.qual != "" {
			return e.qual + "." + e.name
		}
		return e.name
	case *binExpr:
		return "(" + exprString(e.l) + " " + e.op + " " + exprString(e.r) + ")"
	case *unaryExpr:
		return "(" + e.op + " " + exprString(e.x) + ")"
	case *callExpr:
		if e.star {
			return e.name + "(*)"
		}
		args := make([]string, len(e.args))
		for i, a := range e.args {
			args[i] = exprString(a)
		}
		return e.name + "(" + strings.Join(args, ", ") + ")"
	case *isNullExpr:
		if e.not {
			return "(" + exprString(e.x) + " is not null)"
		}
		return "(" + exprString(e.x) + " is null)"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// exprColRefs collects every (qual, name) reference in an expression,
// resolving unqualified names to their owning alias via the scope (the
// same attribution exprAliases uses).
func exprColRefs(e expr, sc *scope, out map[[2]string]bool) {
	switch e := e.(type) {
	case *colRef:
		if e.qual != "" {
			out[[2]string{e.qual, e.name}] = true
			return
		}
		for i, t := range sc.tables {
			if t.ColIndex(e.name) >= 0 {
				out[[2]string{sc.aliases[i], e.name}] = true
			}
		}
	case *binExpr:
		exprColRefs(e.l, sc, out)
		exprColRefs(e.r, sc, out)
	case *unaryExpr:
		exprColRefs(e.x, sc, out)
	case *callExpr:
		for _, a := range e.args {
			exprColRefs(a, sc, out)
		}
	case *isNullExpr:
		exprColRefs(e.x, sc, out)
	}
}

// sortedRefs returns the references in deterministic order (analyzer
// decisions must not depend on map iteration).
func sortedRefs(refs map[[2]string]bool) [][2]string {
	out := make([][2]string, 0, len(refs))
	for r := range refs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
