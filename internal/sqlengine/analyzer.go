package sqlengine

import (
	"context"
	"fmt"

	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// The analyzer rewrites the freshly lowered logical plan with a fixed
// set of rules run to a fixed point, in the style of go-mysql-server's
// rule-based analyzer. Name resolution and type inference have already
// happened (prepareSelect validates every reference and computes the
// output schema before lowering), so the rules here are the relational
// rewrites: predicate pushdown, join reordering by estimated
// cardinality, projection pruning — followed by a final expression-
// compilation pass that freezes every scalar expression into a closure
// with its function lookups and column offsets resolved once.

// analysisCtx carries what rules need: the statement's base scope (for
// attributing unqualified column references to aliases) and the DB.
type analysisCtx struct {
	db *DB
	sc *scope
}

type analyzerRule struct {
	name string
	fn   func(a *analysisCtx, n planNode) (planNode, bool, error)
}

var analyzerRules = []analyzerRule{
	{"pushdown_filters", rulePushdownFilters},
	{"reorder_joins", ruleReorderJoins},
	{"prune_columns", rulePruneColumns},
}

// maxAnalyzerPasses bounds the fixed-point loop; the rule set converges
// in two or three passes, so hitting the bound means a rule oscillates.
const maxAnalyzerPasses = 8

// analyze runs the rewrite rules to a fixed point, then compiles the
// plan's expressions. Each rule application gets a span and a per-rule
// metric, so a trace shows which rewrites fired for a statement.
func (db *DB) analyze(ctx context.Context, n planNode, sc *scope) (planNode, error) {
	a := &analysisCtx{db: db, sc: sc}
	reg := obs.MetricsFrom(ctx)
	for pass := 0; pass < maxAnalyzerPasses; pass++ {
		changedAny := false
		for _, rule := range analyzerRules {
			_, span := obs.StartSpan(ctx, "sql.analyze."+rule.name, obs.Int("pass", pass))
			out, changed, err := rule.fn(a, n)
			span.End()
			if err != nil {
				return nil, err
			}
			if changed {
				reg.Counter(obs.Label(obs.MetricSQLRuleApplies, "rule", rule.name)).Inc()
				changedAny = true
				n = out
			}
		}
		if !changedAny {
			break
		}
	}
	cctx, span := obs.StartSpan(ctx, "sql.analyze.compile_exprs")
	err := a.compilePlan(n)
	span.End()
	_ = cctx
	if err != nil {
		return nil, err
	}
	if s := obs.CurrentSpan(ctx); s != nil {
		s.SetAttr(obs.String("plan", renderPlan(n)))
	}
	return n, nil
}

// transformUp applies f bottom-up over the plan.
func transformUp(n planNode, f func(planNode) (planNode, bool, error)) (planNode, bool, error) {
	changed := false
	switch t := n.(type) {
	case *filterNode:
		c, ch, err := transformUp(t.child, f)
		if err != nil {
			return nil, false, err
		}
		t.child, changed = c, ch
	case *multiJoinNode:
		for i := range t.items {
			c, ch, err := transformUp(t.items[i], f)
			if err != nil {
				return nil, false, err
			}
			t.items[i] = c
			changed = changed || ch
		}
	case *joinNode:
		l, chL, err := transformUp(t.left, f)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := transformUp(t.right, f)
		if err != nil {
			return nil, false, err
		}
		t.left, t.right, changed = l, r, chL || chR
	case *projectNode:
		c, ch, err := transformUp(t.child, f)
		if err != nil {
			return nil, false, err
		}
		t.child, changed = c, ch
	case *groupNode:
		c, ch, err := transformUp(t.child, f)
		if err != nil {
			return nil, false, err
		}
		t.child, changed = c, ch
	case *distinctNode:
		c, ch, err := transformUp(t.child, f)
		if err != nil {
			return nil, false, err
		}
		t.child, changed = c, ch
	case *sortNode:
		c, ch, err := transformUp(t.child, f)
		if err != nil {
			return nil, false, err
		}
		t.child, changed = c, ch
	}
	out, ch, err := f(n)
	return out, changed || ch, err
}

// conjunctAliases returns the aliases an expression references, resolved
// against the statement scope.
func conjunctAliases(a *analysisCtx, e expr) map[string]bool {
	set := map[string]bool{}
	exprAliases(e, a.sc, set)
	return set
}

// itemAlias returns the scan alias at the root of a join item (scans,
// possibly wrapped by pushed-down filters).
func itemAlias(n planNode) string {
	switch n := n.(type) {
	case *scanNode:
		return n.alias
	case *filterNode:
		return itemAlias(n.child)
	default:
		return ""
	}
}

// rulePushdownFilters moves WHERE conjuncts that reference exactly one
// from-item from the multi-join down to a filter above that item's scan,
// so scans shrink before any join touches them.
func rulePushdownFilters(a *analysisCtx, n planNode) (planNode, bool, error) {
	return transformUp(n, func(n planNode) (planNode, bool, error) {
		mj, ok := n.(*multiJoinNode)
		if !ok || len(mj.conjuncts) == 0 {
			return n, false, nil
		}
		byAlias := map[string]int{}
		for i, it := range mj.items {
			if al := itemAlias(it); al != "" {
				if _, dup := byAlias[al]; !dup {
					byAlias[al] = i
				}
			}
		}
		var kept []expr
		changed := false
		for _, c := range mj.conjuncts {
			set := conjunctAliases(a, c)
			if len(set) == 1 {
				var alias string
				for al := range set {
					alias = al
				}
				if i, ok := byAlias[alias]; ok {
					mj.items[i] = &filterNode{child: mj.items[i], cond: c}
					changed = true
					continue
				}
			}
			kept = append(kept, c)
		}
		if !changed {
			return n, false, nil
		}
		mj.conjuncts = kept
		return mj, true, nil
	})
}

// estimateRows is the planner's cardinality estimate: exact for scans,
// halved per pushed filter conjunct, and multiplicative for joins (with
// a flat selectivity discount per key).
func estimateRows(n planNode) int {
	switch n := n.(type) {
	case *scanNode:
		return len(n.table.Rows)
	case *filterNode:
		e := estimateRows(n.child) / 2
		if e < 1 {
			e = 1
		}
		return e
	case *joinNode:
		e := estimateRows(n.left) * estimateRows(n.right)
		for range n.leftKeys {
			e /= 10
		}
		if e < 1 {
			e = 1
		}
		return e
	default:
		return 1
	}
}

// ruleReorderJoins replaces the multi-join with a left-deep tree of
// binary joins. The left (probe) side accumulates and the right side is
// the hash-build input, so the tree starts from the LARGEST estimated
// input and greedily attaches the smallest equi-key-connected remaining
// input as each build side — hash tables are built over small inputs and
// the big table streams through as probes. Cross products are a last
// resort. Leftover conjuncts become a residual filter on top. Original
// FROM order breaks ties, keeping plans deterministic.
func ruleReorderJoins(a *analysisCtx, n planNode) (planNode, bool, error) {
	return transformUp(n, func(n planNode) (planNode, bool, error) {
		mj, ok := n.(*multiJoinNode)
		if !ok {
			return n, false, nil
		}
		items := mj.items
		conjuncts := append([]expr(nil), mj.conjuncts...)
		used := make([]bool, len(conjuncts))

		remaining := make([]int, len(items))
		for i := range items {
			remaining[i] = i
		}
		pick := func(candidates []int) int {
			best, bestRows := -1, 0
			for _, i := range candidates {
				r := estimateRows(items[i])
				if best < 0 || r < bestRows {
					best, bestRows = i, r
				}
			}
			return best
		}
		pickLargest := func(candidates []int) int {
			best, bestRows := -1, 0
			for _, i := range candidates {
				r := estimateRows(items[i])
				if best < 0 || r > bestRows {
					best, bestRows = i, r
				}
			}
			return best
		}

		// keysFor finds the unused equality conjuncts joining the done
		// aliases to the candidate item, mirroring the legacy joinFrom
		// classification (probe side over done, build side over the item).
		keysFor := func(done map[string]bool, alias string, consume bool) (probe, build []expr) {
			for ci, c := range conjuncts {
				if used[ci] {
					continue
				}
				b, ok := c.(*binExpr)
				if !ok || b.op != "=" {
					continue
				}
				la := conjunctAliases(a, b.l)
				ra := conjunctAliases(a, b.r)
				switch {
				case subset(la, done) && onlyAlias(ra, alias):
					probe = append(probe, b.l)
					build = append(build, b.r)
					if consume {
						used[ci] = true
					}
				case subset(ra, done) && onlyAlias(la, alias):
					probe = append(probe, b.r)
					build = append(build, b.l)
					if consume {
						used[ci] = true
					}
				}
			}
			return probe, build
		}

		first := pickLargest(remaining)
		acc := items[first]
		done := map[string]bool{itemAlias(items[first]): true}
		rest := make([]int, 0, len(remaining)-1)
		for _, i := range remaining {
			if i != first {
				rest = append(rest, i)
			}
		}

		for len(rest) > 0 {
			var connected []int
			for _, i := range rest {
				if p, _ := keysFor(done, itemAlias(items[i]), false); len(p) > 0 {
					connected = append(connected, i)
				}
			}
			cand := connected
			if len(cand) == 0 {
				cand = rest
			}
			next := pick(cand)
			alias := itemAlias(items[next])
			probe, build := keysFor(done, alias, true)
			acc = &joinNode{left: acc, right: items[next], leftKeys: probe, rightKeys: build}
			done[alias] = true
			nr := rest[:0]
			for _, i := range rest {
				if i != next {
					nr = append(nr, i)
				}
			}
			rest = nr
		}

		var out planNode = acc
		var residual []expr
		for ci, c := range conjuncts {
			if !used[ci] {
				residual = append(residual, c)
			}
		}
		for _, c := range residual {
			out = &filterNode{child: out, cond: c}
		}
		return out, true, nil
	})
}

// neededRefs walks the plan top-down collecting every column reference
// each subtree needs from below it.
func neededRefs(a *analysisCtx, n planNode, need map[[2]string]bool) {
	switch n := n.(type) {
	case *scanNode:
	case *filterNode:
		exprColRefs(n.cond, a.sc, need)
		neededRefs(a, n.child, need)
	case *multiJoinNode:
		for _, c := range n.conjuncts {
			exprColRefs(c, a.sc, need)
		}
		for _, it := range n.items {
			neededRefs(a, it, need)
		}
	case *joinNode:
		for i := range n.leftKeys {
			exprColRefs(n.leftKeys[i], a.sc, need)
			exprColRefs(n.rightKeys[i], a.sc, need)
		}
		neededRefs(a, n.left, need)
		neededRefs(a, n.right, need)
	case *projectNode:
		for _, se := range n.exprs {
			exprColRefs(se.e, a.sc, need)
		}
		neededRefs(a, n.child, need)
	case *groupNode:
		for _, ge := range n.groupBy {
			exprColRefs(ge, a.sc, need)
		}
		for _, se := range n.exprs {
			exprColRefs(se.e, a.sc, need)
		}
		neededRefs(a, n.child, need)
	case *distinctNode:
		neededRefs(a, n.child, need)
	case *sortNode:
		neededRefs(a, n.child, need)
	}
}

// rulePruneColumns restricts every scan to the columns referenced above
// it, so joins and aggregations carry only live columns. Because batch
// projection is a column re-slice this costs nothing at runtime and
// shrinks every downstream row copy. A second top-down walk then prunes
// join outputs: key columns consumed by the join itself (and anything
// else no ancestor reads) are dropped from the join's output gather,
// which is where a hash join spends its copy bandwidth.
func rulePruneColumns(a *analysisCtx, n planNode) (planNode, bool, error) {
	need := map[[2]string]bool{}
	neededRefs(a, n, need)
	out, changed, err := transformUp(n, func(n planNode) (planNode, bool, error) {
		sn, ok := n.(*scanNode)
		if !ok {
			return n, false, nil
		}
		var proj []int
		for j, c := range sn.table.Cols {
			if need[[2]string{sn.alias, c.Name}] {
				proj = append(proj, j)
			}
		}
		if len(proj) == len(sn.table.Cols) && sn.proj == nil {
			return n, false, nil
		}
		if sn.proj != nil && equalInts(sn.proj, proj) {
			return n, false, nil
		}
		sn.proj = proj
		sn.rebuildCols()
		return sn, true, nil
	})
	if err != nil {
		return nil, false, err
	}
	if pruneJoinOutputs(a, out, nil) {
		changed = true
	}
	return out, changed, nil
}

// pruneJoinOutputs walks top-down carrying the set of columns the
// ancestors of each node read. need == nil means "not yet known" (above
// the first project/group, every column is live). At each join it keeps
// only the needed columns of the left+right concatenation, then recurses
// with the kept columns plus the child's own key references.
func pruneJoinOutputs(a *analysisCtx, n planNode, need map[[2]string]bool) bool {
	switch n := n.(type) {
	case *sortNode:
		return pruneJoinOutputs(a, n.child, nil)
	case *distinctNode:
		// DISTINCT dedupes whole rows; every child column is live.
		return pruneJoinOutputs(a, n.child, nil)
	case *projectNode:
		childNeed := map[[2]string]bool{}
		for _, se := range n.exprs {
			exprColRefs(se.e, a.sc, childNeed)
		}
		return pruneJoinOutputs(a, n.child, childNeed)
	case *groupNode:
		childNeed := map[[2]string]bool{}
		for _, ge := range n.groupBy {
			exprColRefs(ge, a.sc, childNeed)
		}
		for _, se := range n.exprs {
			exprColRefs(se.e, a.sc, childNeed)
		}
		return pruneJoinOutputs(a, n.child, childNeed)
	case *filterNode:
		if need != nil {
			merged := map[[2]string]bool{}
			for k := range need {
				merged[k] = true
			}
			exprColRefs(n.cond, a.sc, merged)
			need = merged
		}
		return pruneJoinOutputs(a, n.child, need)
	case *joinNode:
		// Children prune first: childNeed is a set of names, so it does
		// not depend on this join's output indexes, and the keep indexes
		// below are then computed against the pruned child schemas —
		// nested join trees settle in a single walk.
		childNeed := map[[2]string]bool{}
		for _, side := range []planNode{n.left, n.right} {
			for _, c := range side.cols() {
				if need == nil || need[[2]string{c.qual, c.name}] {
					childNeed[[2]string{c.qual, c.name}] = true
				}
			}
		}
		for i := range n.leftKeys {
			exprColRefs(n.leftKeys[i], a.sc, childNeed)
			exprColRefs(n.rightKeys[i], a.sc, childNeed)
		}
		changed := pruneJoinOutputs(a, n.left, childNeed)
		if pruneJoinOutputs(a, n.right, childNeed) {
			changed = true
		}
		n.out = nil // children may have re-pruned; rebuild lazily
		if need != nil {
			full := append(append([]planCol(nil), n.left.cols()...), n.right.cols()...)
			keep := make([]int, 0, len(full))
			for i, c := range full {
				if need[[2]string{c.qual, c.name}] {
					keep = append(keep, i)
				}
			}
			if len(keep) == 0 {
				keep = []int{0} // keep one column so batches stay non-degenerate
			}
			if len(keep) == len(full) {
				keep = nil
			}
			if !equalPrune(n.outCols, keep) {
				n.outCols = keep
				n.out = nil
				changed = true
			}
		}
		return changed
	case *multiJoinNode:
		// Pre-reorder: nothing to prune yet; the fixed point revisits us.
		return false
	default:
		return false
	}
}

func equalPrune(a, b []int) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return equalInts(a, b)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compilePlan compiles every expression in the plan against its child's
// output schema: column references become offsets, scalar function names
// become resolved closures, aggregate calls in a groupNode become
// references to pseudo-columns computed by the hash aggregator.
func (a *analysisCtx) compilePlan(n planNode) error {
	switch n := n.(type) {
	case *scanNode:
		return nil
	case *filterNode:
		if err := a.compilePlan(n.child); err != nil {
			return err
		}
		c, err := compileExpr(n.cond, compileEnv{cols: n.child.cols()})
		if err != nil {
			return err
		}
		n.ccond = c
		return nil
	case *multiJoinNode:
		return fmt.Errorf("sql: internal: multi-join survived analysis")
	case *joinNode:
		if err := a.compilePlan(n.left); err != nil {
			return err
		}
		if err := a.compilePlan(n.right); err != nil {
			return err
		}
		for i := range n.leftKeys {
			cl, err := compileExpr(n.leftKeys[i], compileEnv{cols: n.left.cols()})
			if err != nil {
				return err
			}
			cr, err := compileExpr(n.rightKeys[i], compileEnv{cols: n.right.cols()})
			if err != nil {
				return err
			}
			n.ckLeft = append(n.ckLeft, cl)
			n.ckRight = append(n.ckRight, cr)
		}
		return nil
	case *projectNode:
		if err := a.compilePlan(n.child); err != nil {
			return err
		}
		env := compileEnv{cols: n.child.cols()}
		for _, se := range n.exprs {
			c, err := compileExpr(se.e, env)
			if err != nil {
				return err
			}
			n.compiled = append(n.compiled, c)
		}
		return nil
	case *groupNode:
		if err := a.compilePlan(n.child); err != nil {
			return err
		}
		return a.compileGroup(n)
	case *distinctNode:
		return a.compilePlan(n.child)
	case *sortNode:
		return a.compilePlan(n.child)
	default:
		return fmt.Errorf("sql: internal: unknown plan node %T", n)
	}
}

// compileGroup extracts the distinct aggregate calls from the SELECT
// list, compiles their arguments over the input schema, and compiles the
// final expressions over the input schema extended with one pseudo-
// column per aggregate.
func (a *analysisCtx) compileGroup(g *groupNode) error {
	childCols := g.child.cols()
	childEnv := compileEnv{cols: childCols}

	for _, ge := range g.groupBy {
		c, err := compileExpr(ge, childEnv)
		if err != nil {
			return err
		}
		g.ckKeys = append(g.ckKeys, c)
	}

	aggIdx := map[string]int{}
	var collect func(e expr) error
	collect = func(e expr) error {
		switch e := e.(type) {
		case *callExpr:
			if ops.IsAggregation(e.name) || e.name == "count" {
				if !e.star && len(e.args) != 1 {
					return fmt.Errorf("sql: aggregate %s takes one argument", e.name)
				}
				for _, arg := range e.args {
					if hasAggregate(arg) {
						return fmt.Errorf("sql: aggregate %s outside grouped context", aggName(arg))
					}
				}
				key := exprString(e)
				if _, ok := aggIdx[key]; ok {
					return nil
				}
				spec := aggSpec{name: e.name, star: e.star}
				if !e.star {
					spec.arg = e.args[0]
					c, err := compileExpr(e.args[0], childEnv)
					if err != nil {
						return err
					}
					spec.carg = c
				}
				aggIdx[key] = len(childCols) + len(g.aggs)
				g.aggs = append(g.aggs, spec)
				return nil
			}
			for _, arg := range e.args {
				if err := collect(arg); err != nil {
					return err
				}
			}
		case *binExpr:
			if err := collect(e.l); err != nil {
				return err
			}
			return collect(e.r)
		case *unaryExpr:
			return collect(e.x)
		case *isNullExpr:
			return collect(e.x)
		}
		return nil
	}
	for _, se := range g.exprs {
		if err := collect(se.e); err != nil {
			return err
		}
	}

	finalEnv := compileEnv{cols: childCols, aggs: aggIdx}
	for _, se := range g.exprs {
		c, err := compileExpr(se.e, finalEnv)
		if err != nil {
			return err
		}
		g.finals = append(g.finals, c)
	}
	return nil
}

// aggName returns the name of the first aggregate call in e (for error
// messages about nested aggregates).
func aggName(e expr) string {
	switch e := e.(type) {
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			return e.name
		}
		for _, a := range e.args {
			if n := aggName(a); n != "" {
				return n
			}
		}
	case *binExpr:
		if n := aggName(e.l); n != "" {
			return n
		}
		return aggName(e.r)
	case *unaryExpr:
		return aggName(e.x)
	case *isNullExpr:
		return aggName(e.x)
	}
	return ""
}
