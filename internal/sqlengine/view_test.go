package sqlengine

import (
	"strings"
	"testing"
)

func TestCreateAndQueryView(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (k VARCHAR, v DOUBLE);
INSERT INTO T(k, v) VALUES ('a', 1), ('a', 2), ('b', 10);
CREATE VIEW W AS SELECT k, SUM(v) AS s FROM T GROUP BY k`)
	res := mustQuery(t, db, "SELECT k, s FROM W ORDER BY k")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][1].AsNumber(); f != 3 {
		t.Errorf("W(a) = %v", f)
	}
	// Views see fresh base data on every reference.
	mustExec(t, db, "INSERT INTO T(k, v) VALUES ('a', 100)")
	res = mustQuery(t, db, "SELECT s FROM W WHERE k = 'a'")
	if f, _ := res.Rows[0][0].AsNumber(); f != 103 {
		t.Errorf("W(a) after insert = %v", f)
	}
}

func TestViewOverView(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (v DOUBLE);
INSERT INTO T(v) VALUES (1), (2);
CREATE VIEW A AS SELECT v * 2 AS w FROM T;
CREATE VIEW B AS SELECT w + 1 AS x FROM A`)
	res := mustQuery(t, db, "SELECT x FROM B ORDER BY x")
	if len(res.Rows) != 2 || res.Rows[1][0].String() != "5" {
		t.Errorf("B = %v", res.Rows)
	}
}

func TestViewAsTabularFunctionArgument(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE S (t YEAR, v DOUBLE);
INSERT INTO S(t, v) VALUES ('2000', 1), ('2001', 2), ('2002', 3);
CREATE VIEW D AS SELECT t, v * 2 AS v FROM S`)
	res := mustQuery(t, db, "SELECT t, v FROM CUMSUM(D) ORDER BY t")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[2][1].AsNumber(); f != 12 {
		t.Errorf("cumsum over view = %v", f)
	}
}

func TestViewErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE); CREATE VIEW W AS SELECT v FROM T")
	bad := []string{
		"CREATE VIEW W AS SELECT v FROM T", // duplicate view
		"CREATE VIEW T AS SELECT v FROM T", // clashes with table
		"CREATE TABLE W (v DOUBLE)",        // clashes with view
		"CREATE VIEW X AS 1",               // needs SELECT
		"DROP VIEW NOPE",                   // missing view
		"INSERT INTO W(v) VALUES (1)",      // views are not writable
	}
	for _, sql := range bad {
		if err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q): want error", sql)
		}
	}
	mustExec(t, db, "DROP VIEW IF EXISTS NOPE")
	mustExec(t, db, "DROP VIEW W")
	if err := db.Exec("SELECT v FROM W"); err == nil {
		t.Error("dropped view must be gone")
	}
}

func TestCyclicViews(t *testing.T) {
	db := NewDB()
	// Two views referencing each other: definable (lazy), but evaluation
	// must detect the cycle instead of recursing forever.
	mustExec(t, db, `
CREATE VIEW A AS SELECT x FROM B;
CREATE VIEW B AS SELECT x FROM A`)
	_, err := db.Query("SELECT x FROM A")
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("want cyclic view error, got %v", err)
	}
}
