package sqlengine

import "exlengine/internal/model"

// stmt is a parsed SQL statement.
type stmt interface{ stmtNode() }

// createStmt is CREATE TABLE name (col TYPE, …).
type createStmt struct {
	table string
	cols  []Column
}

// insertValuesStmt is INSERT INTO name(cols) VALUES (…), (…).
type insertValuesStmt struct {
	table string
	cols  []string
	rows  [][]expr
}

// insertSelectStmt is INSERT INTO name(cols) SELECT ….
type insertSelectStmt struct {
	table string
	cols  []string
	sel   *selectStmt
}

// createViewStmt is CREATE VIEW name AS SELECT …. Views are evaluated
// lazily at reference time (the paper's "creation of relational views" for
// temporary cubes).
type createViewStmt struct {
	name string
	sel  *selectStmt
}

// dropStmt is DROP TABLE|VIEW [IF EXISTS] name.
type dropStmt struct {
	table    string
	view     bool
	ifExists bool
}

// deleteStmt is DELETE FROM name [WHERE cond].
type deleteStmt struct {
	table string
	where expr
}

// selectStmt is SELECT [DISTINCT] exprs FROM items [WHERE cond]
// [GROUP BY exprs] [ORDER BY exprs].
type selectStmt struct {
	distinct bool
	exprs    []selectExpr
	from     []fromItem
	where    expr
	groupBy  []expr
	orderBy  []expr
}

// selectExpr is one output column, with an optional alias.
type selectExpr struct {
	e     expr
	alias string
	star  bool // SELECT *
}

// fromItem is a table reference or a tabular function call, with an
// optional alias.
type fromItem struct {
	table  string   // table name, if a plain reference
	fn     string   // tabular function name, if a function call
	args   []string // table arguments of the function
	params []float64
	alias  string
}

func (*createStmt) stmtNode()       {}
func (*createViewStmt) stmtNode()   {}
func (*insertValuesStmt) stmtNode() {}
func (*insertSelectStmt) stmtNode() {}
func (*dropStmt) stmtNode()         {}
func (*deleteStmt) stmtNode()       {}
func (*selectStmt) stmtNode()       {}

// expr is a scalar SQL expression.
type expr interface{ exprNode() }

// colRef references a column, optionally qualified by a table alias.
type colRef struct {
	qual string
	name string
}

// lit is a literal value (number or string; strings are coerced to typed
// values against column types on insert and on comparison with periods).
type lit struct {
	v model.Value
}

// binExpr is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=) or boolean (and, or).
type binExpr struct {
	op   string
	l, r expr
}

// unaryExpr is unary minus or NOT.
type unaryExpr struct {
	op string // "-" or "not"
	x  expr
}

// callExpr is a scalar or aggregate function call. For COUNT(*), star is
// true and args empty.
type callExpr struct {
	name string
	args []expr
	star bool
}

// isNullExpr is x IS [NOT] NULL: the SQL definedness predicate. Unlike
// every other operator it is never NULL itself — it maps unknown to a
// known boolean, which is what lets queries observe undefined points.
type isNullExpr struct {
	x   expr
	not bool
}

func (*colRef) exprNode()     {}
func (*lit) exprNode()        {}
func (*binExpr) exprNode()    {}
func (*unaryExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*isNullExpr) exprNode() {}
