package sqlengine

import (
	"fmt"
	"sort"

	"exlengine/internal/colbatch"
	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// registerStandardTabularFuncs installs the black-box operators as tabular
// functions, the "statistical add-ons" of Section 5.1: each takes a table
// with one period column and one numeric column (a time series under the
// established naming conventions) and returns a table of the same shape.
func registerStandardTabularFuncs(db *DB) {
	for _, name := range []string{"stl_t", "stl_s", "stl_i", "movavg", "cumsum", "lintrend"} {
		fn := name
		db.RegisterTabular(fn, func(args []*Table, params []float64) (*Table, error) {
			return seriesTabular(fn, args, params)
		})
	}
}

func seriesTabular(opName string, args []*Table, params []float64) (*Table, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%s takes exactly one table argument", opName)
	}
	in := args[0]
	pCol, vCol := -1, -1
	for i, c := range in.Cols {
		switch c.Type.Kind {
		case KPeriod:
			if pCol >= 0 {
				return nil, fmt.Errorf("%s needs a single period column, table %s has several", opName, in.Name)
			}
			pCol = i
		case KDouble, KInteger:
			if vCol < 0 {
				vCol = i
			}
		}
	}
	if pCol < 0 || vCol < 0 {
		return nil, fmt.Errorf("%s needs a (period, numeric) table, got %s", opName, in.Name)
	}

	type point struct {
		p model.Period
		v float64
	}
	pts := make([]point, 0, len(in.Rows))
	for _, r := range in.Rows {
		p, ok := r[pCol].AsPeriod()
		if !ok {
			return nil, fmt.Errorf("%s: non-period value %v in column %s", opName, r[pCol], in.Cols[pCol].Name)
		}
		v, ok := r[vCol].AsNumber()
		if !ok {
			return nil, fmt.Errorf("%s: non-numeric value %v in column %s", opName, r[vCol], in.Cols[vCol].Name)
		}
		pts = append(pts, point{p: p, v: v})
	}
	// Duplicate periods (a malformed but reachable input) must order
	// deterministically: sort.Slice is unstable, so tie-break on value to
	// keep repeated runs byte-identical.
	sort.Slice(pts, func(i, j int) bool {
		if c := pts[i].p.Compare(pts[j].p); c != 0 {
			return c < 0
		}
		return pts[i].v < pts[j].v
	})

	vals := make([]float64, len(pts))
	for i, pt := range pts {
		vals[i] = pt.v
	}
	f, err := ops.Series(opName)
	if err != nil {
		return nil, err
	}
	seasonLen := 1
	if len(pts) > 0 {
		seasonLen = ops.SeasonLength(pts[0].p.Freq)
	}
	res, err := f(vals, seasonLen, params)
	if err != nil {
		return nil, err
	}

	out := &Table{
		Name: opName,
		Cols: []Column{in.Cols[pCol], in.Cols[vCol]},
	}
	for i, pt := range pts {
		out.Rows = append(out.Rows, []model.Value{model.Per(pt.p), model.Num(res[i])})
	}
	return out, nil
}

// ColumnForDim maps a cube dimension type to a SQL column type.
func ColumnForDim(t model.DimType) ColType {
	switch t.Kind {
	case model.DimString:
		return ColType{Kind: KVarchar}
	case model.DimInt:
		return ColType{Kind: KInteger}
	case model.DimPeriod:
		return ColType{Kind: KPeriod, Freq: t.Freq}
	default:
		return ColType{Kind: KVarchar}
	}
}

// CreateTableFor creates an empty table matching a cube schema: one column
// per dimension plus the measure as DOUBLE. Column names are lowercased
// dimension/measure names.
func (db *DB) CreateTableFor(sch model.Schema) error {
	cols := make([]Column, 0, len(sch.Dims)+1)
	for _, d := range sch.Dims {
		cols = append(cols, Column{Name: lower(d.Name), Type: ColumnForDim(d.Type)})
	}
	cols = append(cols, Column{Name: lower(sch.Measure), Type: ColType{Kind: KDouble}})
	db.mu.Lock()
	defer db.mu.Unlock()
	name := lower(sch.Name)
	if _, exists := db.tables[name]; exists {
		return fmt.Errorf("sql: table %s already exists", name)
	}
	db.tables[name] = &Table{Name: name, Cols: cols}
	return nil
}

// LoadCube bulk-loads a cube instance into the matching table (created if
// absent). The cube is converted columnar-first: into a fresh table it
// also primes the table's cached batch, so the SQL dispatch path's
// cube→table conversion is a column re-slice the executor reads directly.
func (db *DB) LoadCube(c *model.Cube) error {
	name := lower(c.Schema().Name)
	t, ok := db.Table(name)
	if !ok {
		if err := db.CreateTableFor(c.Schema()); err != nil {
			return err
		}
		t, _ = db.Table(name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	b := colbatch.FromCube(c)
	if len(t.Rows) == 0 {
		t.Rows = b.Rows()
		t.primeBatch(b)
		return nil
	}
	t.Rows = append(t.Rows, b.Rows()...)
	t.Invalidate()
	return nil
}

// ExtractCube reads a table back into a cube with the given schema. The
// table columns must be the dimensions (in order) followed by the measure,
// which is how CreateTableFor lays tables out.
func (db *DB) ExtractCube(sch model.Schema) (*model.Cube, error) {
	t, ok := db.Table(lower(sch.Name))
	if !ok {
		return nil, fmt.Errorf("sql: no table for cube %s", sch.Name)
	}
	if len(t.Cols) != len(sch.Dims)+1 {
		return nil, fmt.Errorf("sql: table %s has %d columns, cube %s wants %d", t.Name, len(t.Cols), sch.Name, len(sch.Dims)+1)
	}
	c, err := colbatch.ToCube(t.Batch(), sch)
	if err != nil {
		return nil, fmt.Errorf("sql: %w", err)
	}
	return c, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
