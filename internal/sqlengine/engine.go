package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"exlengine/internal/model"
)

// TypeKind classifies SQL column types.
type TypeKind uint8

// Column type kinds.
const (
	KDouble TypeKind = iota
	KInteger
	KVarchar
	KPeriod
)

// ColType is a SQL column type; period columns carry their frequency
// (declared as DAY, MONTH, QUARTER or YEAR).
type ColType struct {
	Kind TypeKind
	Freq model.Frequency
}

// String returns the DDL name of the type.
func (t ColType) String() string {
	switch t.Kind {
	case KDouble:
		return "DOUBLE"
	case KInteger:
		return "INTEGER"
	case KVarchar:
		return "VARCHAR"
	case KPeriod:
		return strings.ToUpper(t.Freq.String())
	default:
		return "UNKNOWN"
	}
}

func parseColType(name string) (ColType, error) {
	switch name {
	case "double", "float", "real", "numeric", "decimal":
		return ColType{Kind: KDouble}, nil
	case "integer", "int", "bigint":
		return ColType{Kind: KInteger}, nil
	case "varchar", "text", "char", "string":
		return ColType{Kind: KVarchar}, nil
	case "day", "date":
		return ColType{Kind: KPeriod, Freq: model.Daily}, nil
	case "month":
		return ColType{Kind: KPeriod, Freq: model.Monthly}, nil
	case "quarter":
		return ColType{Kind: KPeriod, Freq: model.Quarterly}, nil
	case "year":
		return ColType{Kind: KPeriod, Freq: model.Annual}, nil
	default:
		return ColType{}, fmt.Errorf("sql: unknown column type %q", name)
	}
}

// Column is a named, typed table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory relation: ordered columns and rows of values.
type Table struct {
	Name string
	Cols []Column
	Rows [][]model.Value
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SortRows orders the rows by all columns left to right, giving tests and
// exports a deterministic order.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		for k := range t.Cols {
			if c := t.Rows[i][k].Compare(t.Rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// String renders the table as a small fixed-width text grid (for CLI
// output and debugging).
func (t *Table) String() string {
	var b strings.Builder
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteString("\t")
		}
		b.WriteString(c.Name)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteString("\t")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TabularFunc is a user- or system-defined tabular function usable in FROM
// position: it consumes whole tables (plus scalar parameters) and returns a
// table. Black-box operators such as STL_T are registered this way,
// matching the paper's "system provided API … or a user-defined stored
// function".
type TabularFunc func(args []*Table, params []float64) (*Table, error)

// DB is an in-memory SQL database.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*selectStmt
	tabfns map[string]TabularFunc
}

// NewDB returns an empty database with the standard tabular functions
// (STL_T, STL_S, STL_I, MOVAVG, CUMSUM, LINTREND) registered.
func NewDB() *DB {
	db := &DB{
		tables: make(map[string]*Table),
		views:  make(map[string]*selectStmt),
		tabfns: make(map[string]TabularFunc),
	}
	registerStandardTabularFuncs(db)
	return db
}

// RegisterTabular registers (or replaces) a tabular function under the
// given name (case-insensitive).
func (db *DB) RegisterTabular(name string, fn TabularFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tabfns[strings.ToLower(name)] = fn
}

// Table returns the named table (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec parses and executes a script of semicolon-separated statements,
// discarding SELECT results. It stops at the first error.
func (db *DB) Exec(src string) error {
	stmts, err := parseScript(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.run(s); err != nil {
			return err
		}
	}
	return nil
}

// Query parses and executes a single SELECT, returning the result table.
func (db *DB) Query(src string) (*Table, error) {
	stmts, err := parseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: Query expects exactly one statement, got %d", len(stmts))
	}
	sel, ok := stmts[0].(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query expects a SELECT")
	}
	return db.evalSelect(sel)
}

func (db *DB) run(s stmt) (*Table, error) {
	switch s := s.(type) {
	case *createStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.tables[s.table]; exists {
			return nil, fmt.Errorf("sql: table %s already exists", s.table)
		}
		if _, exists := db.views[s.table]; exists {
			return nil, fmt.Errorf("sql: a view named %s already exists", s.table)
		}
		db.tables[s.table] = &Table{Name: s.table, Cols: s.cols}
		return nil, nil
	case *createViewStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.tables[s.name]; exists {
			return nil, fmt.Errorf("sql: a table named %s already exists", s.name)
		}
		if _, exists := db.views[s.name]; exists {
			return nil, fmt.Errorf("sql: view %s already exists", s.name)
		}
		db.views[s.name] = s.sel
		return nil, nil
	case *dropStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if s.view {
			if _, exists := db.views[s.table]; !exists {
				if s.ifExists {
					return nil, nil
				}
				return nil, fmt.Errorf("sql: view %s does not exist", s.table)
			}
			delete(db.views, s.table)
			return nil, nil
		}
		if _, exists := db.tables[s.table]; !exists {
			if s.ifExists {
				return nil, nil
			}
			return nil, fmt.Errorf("sql: table %s does not exist", s.table)
		}
		delete(db.tables, s.table)
		return nil, nil
	case *deleteStmt:
		return nil, db.evalDelete(s)
	case *insertValuesStmt:
		return nil, db.evalInsertValues(s)
	case *insertSelectStmt:
		return nil, db.evalInsertSelect(s)
	case *selectStmt:
		return db.evalSelect(s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", s)
	}
}
