package sqlengine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"exlengine/internal/colbatch"
	"exlengine/internal/model"
)

// ExecMode selects which SELECT executor a DB uses.
type ExecMode int32

const (
	// ExecVector is the analyzed, vectorized executor: statements lower
	// to a logical plan, a rule-based analyzer rewrites it, and columnar
	// operators evaluate it batch-at-a-time. The default.
	ExecVector ExecMode = iota
	// ExecLegacy is the original tuple-at-a-time tree-walking evaluator,
	// kept as the differential reference for the vectorized executor.
	ExecLegacy
)

// defaultExecMode is the mode new DBs start in. exlfuzz flips it to
// ExecLegacy (process-wide) to run whole differential campaigns through
// the old executor.
var defaultExecMode atomic.Int32

// SetDefaultExecMode sets the executor new DBs start with.
func SetDefaultExecMode(m ExecMode) { defaultExecMode.Store(int32(m)) }

// DefaultExecMode returns the executor new DBs start with.
func DefaultExecMode() ExecMode { return ExecMode(defaultExecMode.Load()) }

// TypeKind classifies SQL column types.
type TypeKind uint8

// Column type kinds.
const (
	KDouble TypeKind = iota
	KInteger
	KVarchar
	KPeriod
)

// ColType is a SQL column type; period columns carry their frequency
// (declared as DAY, MONTH, QUARTER or YEAR).
type ColType struct {
	Kind TypeKind
	Freq model.Frequency
}

// String returns the DDL name of the type.
func (t ColType) String() string {
	switch t.Kind {
	case KDouble:
		return "DOUBLE"
	case KInteger:
		return "INTEGER"
	case KVarchar:
		return "VARCHAR"
	case KPeriod:
		return strings.ToUpper(t.Freq.String())
	default:
		return "UNKNOWN"
	}
}

func parseColType(name string) (ColType, error) {
	switch name {
	case "double", "float", "real", "numeric", "decimal":
		return ColType{Kind: KDouble}, nil
	case "integer", "int", "bigint":
		return ColType{Kind: KInteger}, nil
	case "varchar", "text", "char", "string":
		return ColType{Kind: KVarchar}, nil
	case "day", "date":
		return ColType{Kind: KPeriod, Freq: model.Daily}, nil
	case "month":
		return ColType{Kind: KPeriod, Freq: model.Monthly}, nil
	case "quarter":
		return ColType{Kind: KPeriod, Freq: model.Quarterly}, nil
	case "year":
		return ColType{Kind: KPeriod, Freq: model.Annual}, nil
	default:
		return ColType{}, fmt.Errorf("sql: unknown column type %q", name)
	}
}

// Column is a named, typed table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory relation: ordered columns and rows of values.
// Rows is the public, row-major representation (tests and tabular
// functions build it directly); the vectorized executor reads tables
// through Batch, a lazily built columnar view.
type Table struct {
	Name string
	Cols []Column
	Rows [][]model.Value

	batchMu   sync.Mutex
	batch     *colbatch.Batch
	batchRows int
}

// Batch returns a columnar view of the table, built on first use and
// cached. Mutating statements call Invalidate; as a second line of
// defense against direct Rows mutation the cache is also discarded when
// the row count no longer matches.
func (t *Table) Batch() *colbatch.Batch {
	t.batchMu.Lock()
	defer t.batchMu.Unlock()
	if t.batch == nil || t.batchRows != len(t.Rows) {
		t.batch = colbatch.FromRows(t.Rows, len(t.Cols))
		t.batchRows = len(t.Rows)
	}
	return t.batch
}

// primeBatch installs an externally built columnar view (LoadCube uses
// it to share the cube-conversion columns with the executor, zero-copy).
// The batch must match the table's current Rows.
func (t *Table) primeBatch(b *colbatch.Batch) {
	t.batchMu.Lock()
	t.batch = b
	t.batchRows = b.N
	t.batchMu.Unlock()
}

// Invalidate discards the cached columnar view after a mutation.
func (t *Table) Invalidate() {
	t.batchMu.Lock()
	t.batch = nil
	t.batchRows = 0
	t.batchMu.Unlock()
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SortRows orders the rows by all columns left to right (NULLs last),
// giving tests and exports a deterministic order.
func (t *Table) SortRows() {
	sortRowsBy(t.Rows, len(t.Cols), nil)
}

// String renders the table as a small fixed-width text grid (for CLI
// output and debugging).
func (t *Table) String() string {
	var b strings.Builder
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteString("\t")
		}
		b.WriteString(c.Name)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteString("\t")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TabularFunc is a user- or system-defined tabular function usable in FROM
// position: it consumes whole tables (plus scalar parameters) and returns a
// table. Black-box operators such as STL_T are registered this way,
// matching the paper's "system provided API … or a user-defined stored
// function".
type TabularFunc func(args []*Table, params []float64) (*Table, error)

// DB is an in-memory SQL database.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	views    map[string]*selectStmt
	tabfns   map[string]TabularFunc
	execMode atomic.Int32
}

// NewDB returns an empty database with the standard tabular functions
// (STL_T, STL_S, STL_I, MOVAVG, CUMSUM, LINTREND) registered, running
// the process default executor (ExecVector unless overridden).
func NewDB() *DB {
	db := &DB{
		tables: make(map[string]*Table),
		views:  make(map[string]*selectStmt),
		tabfns: make(map[string]TabularFunc),
	}
	db.execMode.Store(defaultExecMode.Load())
	registerStandardTabularFuncs(db)
	return db
}

// SetExecMode switches this DB between the vectorized and the legacy
// executor. Safe to call between statements.
func (db *DB) SetExecMode(m ExecMode) { db.execMode.Store(int32(m)) }

func (db *DB) mode() ExecMode { return ExecMode(db.execMode.Load()) }

// RegisterTabular registers (or replaces) a tabular function under the
// given name (case-insensitive).
func (db *DB) RegisterTabular(name string, fn TabularFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tabfns[strings.ToLower(name)] = fn
}

// Table returns the named table (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec parses and executes a script of semicolon-separated statements,
// discarding SELECT results. It stops at the first error.
func (db *DB) Exec(src string) error {
	return db.ExecContext(context.Background(), src)
}

// ExecContext is Exec with a context: a tracer or metrics registry in
// ctx instruments the analyzer rules and executor operators.
func (db *DB) ExecContext(ctx context.Context, src string) error {
	stmts, err := parseScript(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.run(ctx, s); err != nil {
			return err
		}
	}
	return nil
}

// Query parses and executes a single SELECT, returning the result table.
func (db *DB) Query(src string) (*Table, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext is Query with a context (see ExecContext).
func (db *DB) QueryContext(ctx context.Context, src string) (*Table, error) {
	stmts, err := parseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: Query expects exactly one statement, got %d", len(stmts))
	}
	sel, ok := stmts[0].(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query expects a SELECT")
	}
	return db.evalSelectCtx(ctx, sel)
}

func (db *DB) run(ctx context.Context, s stmt) (*Table, error) {
	switch s := s.(type) {
	case *createStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.tables[s.table]; exists {
			return nil, fmt.Errorf("sql: table %s already exists", s.table)
		}
		if _, exists := db.views[s.table]; exists {
			return nil, fmt.Errorf("sql: a view named %s already exists", s.table)
		}
		db.tables[s.table] = &Table{Name: s.table, Cols: s.cols}
		return nil, nil
	case *createViewStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.tables[s.name]; exists {
			return nil, fmt.Errorf("sql: a table named %s already exists", s.name)
		}
		if _, exists := db.views[s.name]; exists {
			return nil, fmt.Errorf("sql: view %s already exists", s.name)
		}
		db.views[s.name] = s.sel
		return nil, nil
	case *dropStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if s.view {
			if _, exists := db.views[s.table]; !exists {
				if s.ifExists {
					return nil, nil
				}
				return nil, fmt.Errorf("sql: view %s does not exist", s.table)
			}
			delete(db.views, s.table)
			return nil, nil
		}
		if _, exists := db.tables[s.table]; !exists {
			if s.ifExists {
				return nil, nil
			}
			return nil, fmt.Errorf("sql: table %s does not exist", s.table)
		}
		delete(db.tables, s.table)
		return nil, nil
	case *deleteStmt:
		return nil, db.evalDelete(s)
	case *insertValuesStmt:
		return nil, db.evalInsertValues(ctx, s)
	case *insertSelectStmt:
		return nil, db.evalInsertSelect(ctx, s)
	case *selectStmt:
		return db.evalSelectCtx(ctx, s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", s)
	}
}
