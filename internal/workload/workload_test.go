package workload

import (
	"testing"

	"exlengine/internal/model"
)

func TestGDPSourceShape(t *testing.T) {
	data := GDPSource(GDPConfig{Days: 100, Regions: 3})
	pdr, rgdppc := data["PDR"], data["RGDPPC"]
	if pdr == nil || rgdppc == nil {
		t.Fatal("missing cubes")
	}
	if pdr.Len() != 300 {
		t.Errorf("PDR len = %d, want 300", pdr.Len())
	}
	// 100 days from 2000-01-01 span two quarters.
	if rgdppc.Len() != 2*3 {
		t.Errorf("RGDPPC len = %d, want 6", rgdppc.Len())
	}
	if pdr.Schema().String() != "PDR(d: day, r: string)" {
		t.Errorf("PDR schema = %s", pdr.Schema())
	}
	if got := pdr.Schema().Measure; got != "p" {
		t.Errorf("PDR measure = %s", got)
	}
	// Populations are positive and near their regional base.
	for _, tu := range pdr.Tuples() {
		if tu.Measure <= 0 {
			t.Fatalf("non-positive population %v", tu.Measure)
		}
	}
}

func TestGDPSourceDeterministic(t *testing.T) {
	a := GDPSource(GDPConfig{Days: 50, Regions: 2, Seed: 7})
	b := GDPSource(GDPConfig{Days: 50, Regions: 2, Seed: 7})
	for name := range a {
		if !a[name].Equal(b[name], 0) {
			t.Errorf("%s not deterministic", name)
		}
	}
	c := GDPSource(GDPConfig{Days: 50, Regions: 2, Seed: 8})
	if a["PDR"].Equal(c["PDR"], 0) {
		t.Error("different seeds should give different data")
	}
}

func TestSeries(t *testing.T) {
	s := Series(SeriesConfig{Name: "X", Freq: model.Quarterly, N: 20, Level: 100, Trend: 1})
	if s.Len() != 20 {
		t.Fatalf("len = %d", s.Len())
	}
	if !s.Schema().IsTimeSeries() {
		t.Error("Series must build a time series")
	}
	periods, vals, err := s.SortedSeries()
	if err != nil {
		t.Fatal(err)
	}
	if periods[0].Freq != model.Quarterly {
		t.Errorf("freq = %v", periods[0].Freq)
	}
	// Pure trend without noise: strictly increasing.
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("trend not increasing at %d", i)
		}
	}
	// Daily and monthly starts.
	d := Series(SeriesConfig{Name: "D", Freq: model.Daily, N: 3})
	if p, _, _ := d.SortedSeries(); p[0].Freq != model.Daily {
		t.Error("daily series start")
	}
	m := Series(SeriesConfig{Name: "M", Freq: model.Monthly, N: 3})
	if p, _, _ := m.SortedSeries(); p[0].Freq != model.Monthly {
		t.Error("monthly series start")
	}
	y := Series(SeriesConfig{Name: "Y", Freq: model.Annual, N: 3})
	if p, _, _ := y.SortedSeries(); p[0].Freq != model.Annual {
		t.Error("annual series start")
	}
}

func TestInflationSource(t *testing.T) {
	data := InflationSource(5, 24, 3)
	price, weight := data["PRICE"], data["WEIGHT"]
	if price.Len() != 5*24 || weight.Len() != 5 {
		t.Fatalf("lens = %d, %d", price.Len(), weight.Len())
	}
	// Weights are normalized.
	total := 0.0
	for _, tu := range weight.Tuples() {
		total += tu.Measure
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("weights sum to %v", total)
	}
}

func TestSupervisionSource(t *testing.T) {
	data := SupervisionSource(4, 8, 5)
	assets := data["ASSETS"]
	if assets.Len() != 32 {
		t.Fatalf("len = %d", assets.Len())
	}
	for _, tu := range assets.Tuples() {
		if tu.Measure <= 0 {
			t.Fatal("non-positive assets")
		}
	}
}

func TestRegionName(t *testing.T) {
	if RegionName(3) != "R03" || RegionName(42) != "R42" {
		t.Error("RegionName format")
	}
}
