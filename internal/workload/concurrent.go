package workload

import (
	"context"
	"sync"
)

// ConcurrentConfig parameterizes a concurrent multi-run workload: Workers
// goroutines each invoke a run function Iters times against shared
// state. It is the load shape the zero-copy store and the compile cache
// are built for — many concurrent consumers re-executing an unchanged
// program over one store.
type ConcurrentConfig struct {
	Workers int // concurrent run loops (defaults to 4)
	Iters   int // runs per worker (defaults to 4)
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Iters <= 0 {
		c.Iters = 4
	}
	return c
}

// RunConcurrently drives cfg.Workers goroutines, each calling run
// cfg.Iters times (a full engine run plus any read-back the caller wants
// to interleave). It returns the number of completed invocations and the
// first error; a worker stops at its first failure, the others finish
// their loops. Cancelling the context stops every worker at its next
// iteration boundary — no new run starts once ctx is done — and the
// context error is reported (unless a run failed first), so the caller
// gets a coherent partial count. The function takes a closure instead of
// an engine so the workload package stays independent of the
// orchestrator it exercises.
func RunConcurrently(ctx context.Context, cfg ConcurrentConfig, run func(context.Context) error) (int, error) {
	cfg = cfg.withDefaults()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		runs     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.Iters; i++ {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := run(ctx); err != nil {
					fail(err)
					return
				}
				mu.Lock()
				runs++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return runs, firstErr
}
