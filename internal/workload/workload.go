// Package workload generates deterministic synthetic cube data shaped like
// the paper's running example and the scaling sweeps of the benchmark
// harness. The Bank of Italy's production data is proprietary; these
// generators produce inputs with the same structure (populations by day and
// region, GDP per capita by quarter and region, price panels, banking
// panels) so every operator and translation path is exercised end to end.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"exlengine/internal/model"
)

// Data maps cube names to instances; it is assignable to the instance
// types of the execution engines.
type Data = map[string]*model.Cube

// GDPProgram is the paper's Section 2 example in EXL concrete syntax:
// quarterly average population, regional GDP, national GDP, trend via
// seasonal decomposition, and percentage change of the trend.
const GDPProgram = `
cube PDR(d: day, r: string) measure p
cube RGDPPC(q: quarter, r: string) measure g

PQR    := avg(PDR, group by quarter(d) as q, r)
RGDP   := RGDPPC * PQR
GDP    := sum(RGDP, group by q)
GDPT   := stl_t(GDP)
PCHNG  := (GDPT - shift(GDPT, 1)) * 100 / GDPT
`

// GDPConfig parameterizes the GDP workload generator.
type GDPConfig struct {
	Days      int   // number of daily observations per region
	Regions   int   // number of regions
	StartYear int   // first calendar year (defaults to 2000)
	Seed      int64 // PRNG seed (defaults to 1)
}

func (c GDPConfig) withDefaults() GDPConfig {
	if c.StartYear == 0 {
		c.StartYear = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RegionName returns the synthetic name of region i ("R00", "R01", …).
func RegionName(i int) string { return fmt.Sprintf("R%02d", i) }

// GDPSource builds the elementary cubes of the GDP program: PDR(d, r) with
// Days×Regions daily population observations (slow growth plus weekly
// seasonality plus noise) and RGDPPC(q, r) with per-capita GDP for every
// quarter covered by the daily range (trend plus quarterly seasonality).
func GDPSource(cfg GDPConfig) Data {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	pdr := model.NewCube(model.NewSchema("PDR",
		[]model.Dim{{Name: "d", Type: model.TDay}, {Name: "r", Type: model.TString}}, "p"))
	rgdppc := model.NewCube(model.NewSchema("RGDPPC",
		[]model.Dim{{Name: "q", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "g"))

	start := model.NewDaily(cfg.StartYear, time.January, 1)
	startQ, _ := start.Convert(model.Quarterly)
	endQ, _ := start.Shift(int64(cfg.Days - 1)).Convert(model.Quarterly)
	for r := 0; r < cfg.Regions; r++ {
		region := model.Str(RegionName(r))
		base := 1e6 * float64(1+r%7)
		for i := 0; i < cfg.Days; i++ {
			day := start.Shift(int64(i))
			pop := base * (1 + 0.0001*float64(i)) * (1 + 0.01*math.Sin(2*math.Pi*float64(i)/7))
			pop += rng.NormFloat64() * base * 0.001
			if err := pdr.Put([]model.Value{model.Per(day), region}, pop); err != nil {
				panic(err)
			}
		}
		for q := startQ; q.Ord <= endQ.Ord; q = q.Shift(1) {
			idx := float64(q.Ord - startQ.Ord)
			gpc := 20000*(1+0.05*float64(r%5)) + 100*math.Sin(float64(q.Ord)) + 10*idx + rng.NormFloat64()*50
			if err := rgdppc.Put([]model.Value{model.Per(q), region}, gpc); err != nil {
				panic(err)
			}
		}
	}
	return Data{"PDR": pdr, "RGDPPC": rgdppc}
}

// SeriesConfig parameterizes a single synthetic time series.
type SeriesConfig struct {
	Name  string
	Freq  model.Frequency
	N     int
	Start int // start year
	Seed  int64
	// Level, Trend, SeasonAmp, NoiseAmp shape the generated values:
	// Level + Trend·i + SeasonAmp·sin(2πi/season) + noise.
	Level, Trend, SeasonAmp, NoiseAmp float64
}

// Series builds a synthetic time series cube with one time dimension named
// "t" and measure "v".
func Series(cfg SeriesConfig) *model.Cube {
	if cfg.Start == 0 {
		cfg.Start = 2000
	}
	if cfg.Level == 0 {
		cfg.Level = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	sch := model.NewSchema(cfg.Name,
		[]model.Dim{{Name: "t", Type: model.DimType{Kind: model.DimPeriod, Freq: cfg.Freq}}}, "v")
	c := model.NewCube(sch)
	var start model.Period
	switch cfg.Freq {
	case model.Daily:
		start = model.NewDaily(cfg.Start, time.January, 1)
	case model.Monthly:
		start = model.NewMonthly(cfg.Start, time.January)
	case model.Quarterly:
		start = model.NewQuarterly(cfg.Start, 1)
	default:
		start = model.NewAnnual(cfg.Start)
	}
	season := 4.0
	switch cfg.Freq {
	case model.Monthly:
		season = 12
	case model.Daily:
		season = 7
	}
	for i := 0; i < cfg.N; i++ {
		v := cfg.Level + cfg.Trend*float64(i) +
			cfg.SeasonAmp*math.Sin(2*math.Pi*float64(i)/season) +
			cfg.NoiseAmp*rng.NormFloat64()
		if err := c.Put([]model.Value{model.Per(start.Shift(int64(i)))}, v); err != nil {
			panic(err)
		}
	}
	return c
}

// InflationProgram computes a CPI from item prices and basket weights:
// weighted item prices by month, the index, a yearly average and the
// year-over-year percentage change.
const InflationProgram = `
cube PRICE(m: month, i: string) measure p
cube WEIGHT(i: string) measure w

WP     := PRICE * WEIGHT
CPI    := sum(WP, group by m)
CPIY   := avg(CPI, group by year(m) as y)
INFL   := (CPI - shift(CPI, 12)) * 100 / shift(CPI, 12)
`

// InflationSource builds PRICE (items × months, trending with seasonal
// swings) and WEIGHT (normalized basket weights).
func InflationSource(items, months int, seed int64) Data {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	price := model.NewCube(model.NewSchema("PRICE",
		[]model.Dim{{Name: "m", Type: model.TMonth}, {Name: "i", Type: model.TString}}, "p"))
	weight := model.NewCube(model.NewSchema("WEIGHT",
		[]model.Dim{{Name: "i", Type: model.TString}}, "w"))
	start := model.NewMonthly(2010, time.January)
	total := 0.0
	raw := make([]float64, items)
	for i := range raw {
		raw[i] = 1 + rng.Float64()
		total += raw[i]
	}
	for i := 0; i < items; i++ {
		item := model.Str(fmt.Sprintf("item%02d", i))
		if err := weight.Put([]model.Value{item}, raw[i]/total); err != nil {
			panic(err)
		}
		base := 50 + 10*float64(i%9)
		for m := 0; m < months; m++ {
			v := base * (1 + 0.002*float64(m)) * (1 + 0.01*math.Sin(2*math.Pi*float64(m)/12))
			v += rng.NormFloat64() * 0.1
			if err := price.Put([]model.Value{model.Per(start.Shift(int64(m))), item}, v); err != nil {
				panic(err)
			}
		}
	}
	return Data{"PRICE": price, "WEIGHT": weight}
}

// SupervisionProgram is a supervisory-reporting style program: total assets
// by quarter, a four-quarter moving average, each bank's market share, and
// the deviation of system assets from their linear trend.
const SupervisionProgram = `
cube ASSETS(q: quarter, b: string) measure a

SYS     := sum(ASSETS, group by q)
SYSMA   := movavg(SYS, 4)
SHARE   := ASSETS / SYS * 100
SYSTREND := lintrend(SYS)
GAP     := SYS - SYSTREND
`

// SupervisionSource builds ASSETS(q, b) for banks × quarters with
// heterogeneous sizes and idiosyncratic growth.
func SupervisionSource(banks, quarters int, seed int64) Data {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	assets := model.NewCube(model.NewSchema("ASSETS",
		[]model.Dim{{Name: "q", Type: model.TQuarter}, {Name: "b", Type: model.TString}}, "a"))
	start := model.NewQuarterly(2015, 1)
	for b := 0; b < banks; b++ {
		bank := model.Str(fmt.Sprintf("bank%03d", b))
		size := math.Exp(rng.NormFloat64()) * 1e9
		growth := 1 + 0.01*rng.Float64()
		v := size
		for q := 0; q < quarters; q++ {
			v *= growth * (1 + 0.005*rng.NormFloat64())
			if err := assets.Put([]model.Value{model.Per(start.Shift(int64(q))), bank}, v); err != nil {
				panic(err)
			}
		}
	}
	return Data{"ASSETS": assets}
}
