package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"exlengine/internal/obs"
	"exlengine/internal/store"
)

// Load-harness metric names, recorded in LoadConfig.Metrics.
const (
	// MetricLoadRunLatency is per-run request latency in milliseconds.
	MetricLoadRunLatency = "load_run_latency_ms"
	// MetricLoadRunsOK counts runs that returned 200.
	MetricLoadRunsOK = "load_runs_ok_total"
	// MetricLoadRunsShed counts runs rejected with 429 or 503 — the
	// governor shedding under overload, as designed.
	MetricLoadRunsShed = "load_runs_shed_total"
	// MetricLoadErrors counts everything else: transport failures and
	// unexpected statuses anywhere in the session flow.
	MetricLoadErrors = "load_errors_total"
	// MetricLoadSessions counts sessions the harness opened.
	MetricLoadSessions = "load_sessions_total"
)

// LoadConfig shapes an HTTP load run against an exlserve instance.
type LoadConfig struct {
	// BaseURL of the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Sessions is the number of concurrent client sessions. Each opens
	// its own server session, loads data, and issues runs.
	Sessions int
	// Tenants spreads sessions across this many tenant namespaces
	// (round-robin). Defaults to 1.
	Tenants int
	// RunsPerSession is how many runs each session issues. Defaults to 1.
	RunsPerSession int
	// GDP sizes the synthetic dataset each tenant works on.
	GDP GDPConfig
	// Metrics receives latency and outcome metrics. Defaults to a fresh
	// registry.
	Metrics *obs.Registry
	// Client overrides the HTTP client (defaults to one with a 60s
	// timeout).
	Client *http.Client
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Sessions int           // sessions opened
	Runs     int64         // run requests issued
	OK       int64         // runs that returned 200
	Shed     int64         // runs rejected 429/503 (typed overload)
	Errors   int64         // transport failures and unexpected statuses
	P50      time.Duration // median run latency
	P99      time.Duration // tail run latency
	Elapsed  time.Duration // wall time for the whole load run
	Metrics  *obs.Registry // the registry everything was recorded in
}

func (r LoadReport) String() string {
	return fmt.Sprintf("sessions=%d runs=%d ok=%d shed=%d errors=%d p50=%s p99=%s elapsed=%s",
		r.Sessions, r.Runs, r.OK, r.Shed, r.Errors,
		r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond),
		r.Elapsed.Round(time.Millisecond))
}

// RunLoad drives cfg.Sessions concurrent sessions against the server:
// each opens a session in its tenant, registers the GDP program (409
// from a session that lost the per-tenant race is benign), uploads the
// source cubes as CSV, issues runs, and closes the session. Outcomes
// and latency quantiles are recorded through cfg.Metrics; overload
// rejections (429/503) count as shed, not errors — under deliberate
// overload they are the server working correctly.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.BaseURL == "" {
		return LoadReport{}, fmt.Errorf("workload: BaseURL is required")
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.RunsPerSession <= 0 {
		cfg.RunsPerSession = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}

	// Serialize the source cubes once; every session uploads the same
	// bytes.
	data := GDPSource(cfg.GDP)
	csv := make(map[string][]byte, len(data))
	for name, cube := range data {
		var buf bytes.Buffer
		if err := store.WriteCSV(&buf, cube); err != nil {
			return LoadReport{}, fmt.Errorf("workload: serialize %s: %w", name, err)
		}
		csv[name] = buf.Bytes()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("load-%02d", i%cfg.Tenants)
			runSession(ctx, cfg, tenant, csv)
		}(i)
	}
	wg.Wait()

	reg := cfg.Metrics
	h := reg.Histogram(MetricLoadRunLatency)
	rep := LoadReport{
		Sessions: cfg.Sessions,
		Runs:     h.Count(),
		OK:       reg.Counter(MetricLoadRunsOK).Value(),
		Shed:     reg.Counter(MetricLoadRunsShed).Value(),
		Errors:   reg.Counter(MetricLoadErrors).Value(),
		P50:      time.Duration(h.Quantile(0.50) * float64(time.Millisecond)),
		P99:      time.Duration(h.Quantile(0.99) * float64(time.Millisecond)),
		Elapsed:  time.Since(start),
		Metrics:  reg,
	}
	return rep, nil
}

// runSession is one client's full lifecycle against the server.
func runSession(ctx context.Context, cfg LoadConfig, tenant string, csv map[string][]byte) {
	reg := cfg.Metrics
	sid, err := openSession(ctx, cfg, tenant)
	if err != nil {
		reg.Counter(MetricLoadErrors).Inc()
		return
	}
	reg.Counter(MetricLoadSessions).Inc()
	defer func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodDelete,
			cfg.BaseURL+"/v1/sessions/"+sid, nil)
		if resp, err := cfg.Client.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	// Register the program; exactly one session per tenant wins, the
	// rest see 409 Conflict — both mean the program is in place.
	status, err := doJSON(ctx, cfg, sid, http.MethodPost, "/v1/programs",
		map[string]string{"name": "gdp", "source": GDPProgram}, nil)
	if err != nil || (status != http.StatusCreated && status != http.StatusConflict) {
		reg.Counter(MetricLoadErrors).Inc()
		return
	}

	for name, body := range csv {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			cfg.BaseURL+"/v1/cubes/"+name, bytes.NewReader(body))
		if err != nil {
			reg.Counter(MetricLoadErrors).Inc()
			return
		}
		req.Header.Set("X-EXL-Session", sid)
		req.Header.Set("Content-Type", "text/csv")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			reg.Counter(MetricLoadErrors).Inc()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Like the register 409 above: concurrent sessions upload the
		// same bytes, each stamped server-side at its own instant, and a
		// commit-order inversion rejects the older stamp as stale. The
		// cube is in place either way.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
			reg.Counter(MetricLoadErrors).Inc()
			return
		}
	}

	for i := 0; i < cfg.RunsPerSession; i++ {
		t0 := time.Now()
		status, err := doJSON(ctx, cfg, sid, http.MethodPost, "/v1/run", struct{}{}, nil)
		reg.Histogram(MetricLoadRunLatency).ObserveDuration(time.Since(t0))
		switch {
		case err != nil:
			reg.Counter(MetricLoadErrors).Inc()
		case status == http.StatusOK:
			reg.Counter(MetricLoadRunsOK).Inc()
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			reg.Counter(MetricLoadRunsShed).Inc()
		default:
			reg.Counter(MetricLoadErrors).Inc()
		}
	}
}

// openSession creates a server session in the tenant and returns its ID.
func openSession(ctx context.Context, cfg LoadConfig, tenant string) (string, error) {
	var out struct {
		Session string `json:"session"`
	}
	status, err := doJSON(ctx, cfg, "", http.MethodPost, "/v1/sessions",
		map[string]string{"tenant": tenant}, &out)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", fmt.Errorf("workload: session create: status %d", status)
	}
	return out.Session, nil
}

// doJSON posts body as JSON and optionally decodes the response into out.
func doJSON(ctx context.Context, cfg LoadConfig, sid, method, path string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, cfg.BaseURL+path, &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sid != "" {
		req.Header.Set("X-EXL-Session", sid)
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
