package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/obs"
)

// newGDPEngine builds an engine loaded with the GDP program and its
// synthetic source cubes.
func newGDPEngine(t *testing.T, cfg GDPConfig, opts ...engine.Option) *engine.Engine {
	t.Helper()
	eng := engine.New(opts...)
	if err := eng.RegisterProgram("gdp", GDPProgram); err != nil {
		t.Fatal(err)
	}
	data := GDPSource(cfg)
	for _, name := range []string{"PDR", "RGDPPC"} {
		if err := eng.PutCube(data[name], time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestRunConcurrently exercises the zero-copy read path under real
// concurrency: N workers re-running the GDP plan against one shared
// store while reading every cube back. Under `go test -race` this is the
// regression test for the frozen-cube discipline — before the store
// handed out shared references, races here were prevented only by deep
// clones.
func TestRunConcurrently(t *testing.T) {
	mx := obs.NewRegistry()
	eng := newGDPEngine(t, GDPConfig{Days: 120, Regions: 3},
		engine.WithParallelDispatch(), engine.WithMetrics(mx))
	asOf := time.Unix(1, 0)
	cfg := ConcurrentConfig{Workers: 4, Iters: 3}
	runs, err := RunConcurrently(context.Background(), cfg, func(ctx context.Context) error {
		if _, err := eng.Run(ctx, engine.RunAt(asOf)); err != nil {
			return err
		}
		// Snapshot-style read-back over shared frozen references.
		for _, name := range eng.CubeNames() {
			if c, ok := eng.Cube(name); ok && c.Len() < 0 {
				return fmt.Errorf("negative cube size for %s", name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Workers * cfg.Iters; runs != want {
		t.Fatalf("completed %d runs, want %d", runs, want)
	}
	if got := mx.Counter(obs.MetricRuns).Value(); got != int64(runs) {
		t.Errorf("runs counter = %d, want %d", got, runs)
	}
	gdp, ok := eng.Cube("GDP")
	if !ok || gdp.Len() == 0 {
		t.Fatalf("GDP cube missing or empty after concurrent runs")
	}
	if !gdp.Frozen() {
		t.Errorf("store returned an unfrozen cube")
	}
}

// TestRunConcurrentlyPropagatesError: the first failure is reported and
// the worker that hit it stops.
func TestRunConcurrentlyPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	runs, err := RunConcurrently(context.Background(), ConcurrentConfig{Workers: 2, Iters: 3},
		func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if runs != 0 {
		t.Errorf("runs = %d, want 0", runs)
	}
}

// waitNoLeak polls until the goroutine count returns to the baseline
// (the engine/faulttol leak-check pattern).
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestRunConcurrentlyCancelMidRun: cancelling the context mid-workload
// stops every worker at its next iteration boundary, reports the
// cancellation, leaves a coherent partial count, and leaks no
// goroutines.
func TestRunConcurrentlyCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := newGDPEngine(t, GDPConfig{Days: 60, Regions: 2}, engine.WithParallelDispatch())
	ctx, cancel := context.WithCancel(context.Background())

	var completed atomic.Int64
	cfg := ConcurrentConfig{Workers: 4, Iters: 1000} // far more than can finish
	runs, err := RunConcurrently(ctx, cfg, func(ctx context.Context) error {
		if _, err := eng.Run(ctx, engine.RunAt(time.Unix(1, 0))); err != nil {
			return err
		}
		if completed.Add(1) >= 4 {
			cancel() // a few runs in, pull the plug
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs < 4 || runs >= cfg.Workers*cfg.Iters {
		t.Fatalf("partial count = %d, want a few completed runs, far fewer than %d", runs, cfg.Workers*cfg.Iters)
	}
	// Counted runs never exceed the closure's own tally (runs that were
	// cancelled mid-flight must not be counted as completed).
	if int64(runs) > completed.Load() {
		t.Errorf("reported %d completed runs but only %d closures finished", runs, completed.Load())
	}
	waitNoLeak(t, before)
}

// TestRunConcurrentlyPreCancelled: an already-cancelled context starts
// no runs at all.
func TestRunConcurrentlyPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	runs, err := RunConcurrently(ctx, ConcurrentConfig{Workers: 3, Iters: 5},
		func(context.Context) error { calls.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs != 0 || calls.Load() != 0 {
		t.Errorf("runs=%d calls=%d, want zero work under a dead context", runs, calls.Load())
	}
}
