package workload

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/obs"
)

// newGDPEngine builds an engine loaded with the GDP program and its
// synthetic source cubes.
func newGDPEngine(t *testing.T, cfg GDPConfig, opts ...engine.Option) *engine.Engine {
	t.Helper()
	eng := engine.New(opts...)
	if err := eng.RegisterProgram("gdp", GDPProgram); err != nil {
		t.Fatal(err)
	}
	data := GDPSource(cfg)
	for _, name := range []string{"PDR", "RGDPPC"} {
		if err := eng.PutCube(data[name], time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestRunConcurrently exercises the zero-copy read path under real
// concurrency: N workers re-running the GDP plan against one shared
// store while reading every cube back. Under `go test -race` this is the
// regression test for the frozen-cube discipline — before the store
// handed out shared references, races here were prevented only by deep
// clones.
func TestRunConcurrently(t *testing.T) {
	mx := obs.NewRegistry()
	eng := newGDPEngine(t, GDPConfig{Days: 120, Regions: 3},
		engine.WithParallelDispatch(), engine.WithMetrics(mx))
	asOf := time.Unix(1, 0)
	cfg := ConcurrentConfig{Workers: 4, Iters: 3}
	runs, err := RunConcurrently(context.Background(), cfg, func(ctx context.Context) error {
		if _, err := eng.Run(ctx, engine.RunAt(asOf)); err != nil {
			return err
		}
		// Snapshot-style read-back over shared frozen references.
		for _, name := range eng.CubeNames() {
			if c, ok := eng.Cube(name); ok && c.Len() < 0 {
				return fmt.Errorf("negative cube size for %s", name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Workers * cfg.Iters; runs != want {
		t.Fatalf("completed %d runs, want %d", runs, want)
	}
	if got := mx.Counter(obs.MetricRuns).Value(); got != int64(runs) {
		t.Errorf("runs counter = %d, want %d", got, runs)
	}
	gdp, ok := eng.Cube("GDP")
	if !ok || gdp.Len() == 0 {
		t.Fatalf("GDP cube missing or empty after concurrent runs")
	}
	if !gdp.Frozen() {
		t.Errorf("store returned an unfrozen cube")
	}
}

// TestRunConcurrentlyPropagatesError: the first failure is reported and
// the worker that hit it stops.
func TestRunConcurrentlyPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	runs, err := RunConcurrently(context.Background(), ConcurrentConfig{Workers: 2, Iters: 3},
		func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if runs != 0 {
		t.Errorf("runs = %d, want 0", runs)
	}
}
