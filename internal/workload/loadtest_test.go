package workload_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"exlengine/internal/workload"
	"exlengine/server"
)

// loadSessions is the smoke-scale session count; TestLoadHarness drives
// this many concurrent client sessions against an in-process server.
const loadSessions = 500

// TestLoadHarness drives hundreds of concurrent sessions through the
// full HTTP flow (session → program → data → run → close) against an
// in-process server sized well below the offered load, so a share of
// runs is shed with typed 429/503 — never a 500 or transport error —
// and no goroutine survives shutdown.
func TestLoadHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	before := runtime.NumGoroutine()

	srv := server.New(server.Config{
		MaxConcurrent:      4, // per tenant — far below the offered load
		SessionIdleTimeout: time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := workload.RunLoad(ctx, workload.LoadConfig{
		BaseURL:        ts.URL,
		Sessions:       loadSessions,
		Tenants:        8,
		RunsPerSession: 1,
		GDP:            workload.GDPConfig{Days: 120, Regions: 2},
		Client: &http.Client{
			Timeout: 3 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: loadSessions,
				MaxConnsPerHost:     0,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %s", rep)

	if got := rep.Metrics.Counter(workload.MetricLoadSessions).Value(); got != loadSessions {
		t.Errorf("opened %d sessions, want %d", got, loadSessions)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run saw %d hard errors (want only 200s and typed 429/503 sheds)", rep.Errors)
	}
	if rep.OK == 0 {
		t.Fatalf("no run succeeded")
	}
	if rep.OK+rep.Shed != rep.Runs {
		t.Fatalf("ok=%d + shed=%d != runs=%d", rep.OK, rep.Shed, rep.Runs)
	}
	if rep.P99 < rep.P50 {
		t.Errorf("p99=%s < p50=%s", rep.P99, rep.P50)
	}

	ts.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after load: %v", err)
	}
	waitNoLeakBaseline(t, before)
}

// waitNoLeakBaseline polls until the goroutine count returns to the
// pre-test baseline (mirrors waitNoLeak in the internal test package).
func waitNoLeakBaseline(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak after load: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
