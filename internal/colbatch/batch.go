// Package colbatch is the columnar batch representation shared by the
// vectorized SQL executor and the matrix-oriented frame engine: a batch
// is one []model.Value slice per column plus an explicit row count, so
// projections, chunking and cube↔table conversion are column re-slices
// instead of row-by-row copies.
//
// Batches are immutable once handed to a consumer: operators that drop
// or reorder rows build fresh column slices rather than mutating shared
// ones, which is what makes zero-copy column sharing between operators
// (and between the SQL and frame engines) safe.
package colbatch

import (
	"fmt"

	"exlengine/internal/model"
)

// Chunk is the preferred number of rows per streamed batch. It is large
// enough to amortize per-batch overhead and small enough that a batch's
// working set stays cache-resident.
const Chunk = 1024

// Batch is a columnar slice of rows: Cols[i] holds column i's value for
// every row. N is explicit so zero-column batches (SELECT of literals
// only, fully pruned scans) still carry their row count.
type Batch struct {
	N    int
	Cols [][]model.Value
}

// New returns an empty batch with the given number of columns.
func New(width int) *Batch {
	return &Batch{Cols: make([][]model.Value, width)}
}

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return len(b.Cols) }

// AppendRow appends one row across all columns. The row length must
// match the batch width.
func (b *Batch) AppendRow(row []model.Value) {
	for i, v := range row {
		b.Cols[i] = append(b.Cols[i], v)
	}
	b.N++
}

// Row gathers row i into buf (grown as needed) and returns it.
func (b *Batch) Row(i int, buf []model.Value) []model.Value {
	if cap(buf) < len(b.Cols) {
		buf = make([]model.Value, len(b.Cols))
	}
	buf = buf[:len(b.Cols)]
	for j, c := range b.Cols {
		buf[j] = c[i]
	}
	return buf
}

// Slice returns rows [lo, hi) as a zero-copy column re-slice.
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{N: hi - lo, Cols: make([][]model.Value, len(b.Cols))}
	for i, c := range b.Cols {
		out.Cols[i] = c[lo:hi:hi]
	}
	return out
}

// Project returns the batch restricted to the given column indices, as a
// zero-copy column re-slice.
func (b *Batch) Project(idx []int) *Batch {
	out := &Batch{N: b.N, Cols: make([][]model.Value, len(idx))}
	for i, j := range idx {
		out.Cols[i] = b.Cols[j]
	}
	return out
}

// FromRows converts a row-major relation into a batch. width is the
// number of columns (needed when rows is empty).
func FromRows(rows [][]model.Value, width int) *Batch {
	b := &Batch{N: len(rows), Cols: make([][]model.Value, width)}
	for i := range b.Cols {
		col := make([]model.Value, len(rows))
		for r, row := range rows {
			col[r] = row[i]
		}
		b.Cols[i] = col
	}
	return b
}

// Rows materializes the batch as row-major slices (the representation of
// sqlengine tables and frames). This is the one place a row-by-row copy
// happens; everything upstream stays columnar.
func (b *Batch) Rows() [][]model.Value {
	rows := make([][]model.Value, b.N)
	backing := make([]model.Value, b.N*len(b.Cols))
	for i := range rows {
		row := backing[i*len(b.Cols) : (i+1)*len(b.Cols) : (i+1)*len(b.Cols)]
		for j, c := range b.Cols {
			row[j] = c[i]
		}
		rows[i] = row
	}
	return rows
}

// FromCube converts a cube into a batch whose columns are the dimensions
// in schema order followed by the measure. Tuples are emitted in the
// cube's deterministic sorted order.
func FromCube(c *model.Cube) *Batch {
	sch := c.Schema()
	w := len(sch.Dims) + 1
	tuples := c.Tuples()
	b := &Batch{N: len(tuples), Cols: make([][]model.Value, w)}
	for i := range b.Cols {
		b.Cols[i] = make([]model.Value, len(tuples))
	}
	for r, tu := range tuples {
		for d, v := range tu.Dims {
			b.Cols[d][r] = v
		}
		b.Cols[w-1][r] = model.Num(tu.Measure)
	}
	return b
}

// ToCube converts a batch back into a cube under the given schema. The
// columns must be the dimensions (in order) followed by the measure.
// Rows containing an invalid (NULL/NA) value are dropped, matching the
// partial-function semantics of cubes.
func ToCube(b *Batch, sch model.Schema) (*model.Cube, error) {
	if len(b.Cols) != len(sch.Dims)+1 {
		return nil, fmt.Errorf("colbatch: batch has %d columns, cube %s wants %d",
			len(b.Cols), sch.Name, len(sch.Dims)+1)
	}
	c := model.NewCube(sch)
	dims := make([]model.Value, len(sch.Dims))
	mcol := b.Cols[len(b.Cols)-1]
	for i := 0; i < b.N; i++ {
		null := false
		for d := 0; d < len(dims); d++ {
			v := b.Cols[d][i]
			if !v.IsValid() {
				null = true
				break
			}
			dims[d] = v
		}
		if null || !mcol[i].IsValid() {
			continue
		}
		m, ok := mcol[i].AsNumber()
		if !ok {
			return nil, fmt.Errorf("colbatch: non-numeric measure %v for cube %s", mcol[i], sch.Name)
		}
		if err := c.Put(dims, m); err != nil {
			return nil, err
		}
	}
	return c, nil
}
