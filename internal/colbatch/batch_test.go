package colbatch

import (
	"testing"

	"exlengine/internal/model"
)

func TestRoundTripRows(t *testing.T) {
	rows := [][]model.Value{
		{model.Str("a"), model.Num(1)},
		{model.Str("b"), model.Num(2)},
		{model.Str("c"), model.Num(3)},
	}
	b := FromRows(rows, 2)
	if b.N != 3 || b.NumCols() != 2 {
		t.Fatalf("batch shape = %d x %d", b.N, b.NumCols())
	}
	back := b.Rows()
	for i := range rows {
		for j := range rows[i] {
			if !rows[i][j].Equal(back[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, rows[i][j], back[i][j])
			}
		}
	}
}

func TestSliceAndProjectShareColumns(t *testing.T) {
	b := New(3)
	for i := 0; i < 10; i++ {
		b.AppendRow([]model.Value{model.Int(int64(i)), model.Num(float64(i)), model.Str("x")})
	}
	s := b.Slice(2, 7)
	if s.N != 5 {
		t.Fatalf("slice N = %d", s.N)
	}
	if &s.Cols[0][0] != &b.Cols[0][2] {
		t.Fatal("Slice copied the column instead of re-slicing")
	}
	p := b.Project([]int{2, 0})
	if p.NumCols() != 2 || p.N != 10 {
		t.Fatalf("project shape = %d x %d", p.N, p.NumCols())
	}
	if &p.Cols[1][0] != &b.Cols[0][0] {
		t.Fatal("Project copied the column instead of re-slicing")
	}
}

func TestCubeRoundTrip(t *testing.T) {
	sch := model.NewSchema("S",
		[]model.Dim{{Name: "t", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "v")
	c := model.NewCube(sch)
	q := model.NewQuarterly(2001, 1)
	for i := 0; i < 4; i++ {
		if err := c.Put([]model.Value{model.Per(q.Shift(int64(i))), model.Str("n")}, float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	b := FromCube(c)
	if b.N != 4 || b.NumCols() != 3 {
		t.Fatalf("batch shape = %d x %d", b.N, b.NumCols())
	}
	back, err := ToCube(b, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back, 0) {
		t.Fatalf("round trip lost tuples:\n%v", c.Diff(back, 0, 8))
	}
}

func TestToCubeDropsNullRows(t *testing.T) {
	sch := model.NewSchema("S", []model.Dim{{Name: "k", Type: model.TString}}, "v")
	b := New(2)
	b.AppendRow([]model.Value{model.Str("a"), model.Num(1)})
	b.AppendRow([]model.Value{model.Str("b"), model.Value{}}) // NULL measure
	b.AppendRow([]model.Value{model.Value{}, model.Num(3)})   // NULL dim
	c, err := ToCube(b, sch)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cube has %d tuples, want 1 (NULL rows dropped)", c.Len())
	}
}

func TestZeroColumnBatchKeepsRowCount(t *testing.T) {
	b := FromRows([][]model.Value{{model.Num(1)}, {model.Num(2)}}, 1)
	p := b.Project(nil)
	if p.N != 2 || p.NumCols() != 0 {
		t.Fatalf("projected-away batch shape = %d x %d, want 2 x 0", p.N, p.NumCols())
	}
}
