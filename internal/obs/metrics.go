package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named counters, gauges and histograms. Instrument
// lookups take a read lock only; updates on the instruments themselves
// are lock-free atomics, so recording a metric on the dispatch hot path
// costs an atomic add. All methods are safe on a nil registry: lookups
// return nil instruments whose methods no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry Default hands out. It
// exists for single-tenant processes (the CLIs) that want one sink for
// everything; multi-tenant code must build one registry per tenant with
// NewRegistry so tenants never share instruments.
var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the counter with the name. Use
// Label to render labelled names.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the histogram bucket upper bounds. The engine records
// latencies in milliseconds, so the range spans 100µs to 10s with a final
// overflow bucket.
var histBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// numBuckets is len(histBounds) plus one overflow bucket.
const numBuckets = 17

// Histogram is a fixed-bucket exponential histogram. Observations are
// lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
	buckets [numBuckets]atomic.Int64
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	i := sort.SearchFloat64s(histBounds, v)
	h.buckets[i].Add(1)
}

// ObserveDuration records a duration in milliseconds, the unit the
// engine's latency histograms use. Safe on a nil histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()) / 1e6)
}

// Count returns the number of observations. A nil histogram reads zero.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations. A nil histogram reads zero.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// returning the upper bound of the bucket holding the quantile. The
// overflow bucket reports the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i < len(histBounds) {
				return histBounds[i]
			}
			return histBounds[len(histBounds)-1]
		}
	}
	return histBounds[len(histBounds)-1]
}

// histSnapshot is the JSON form of a histogram.
type histSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []bucketSnap `json:"buckets,omitempty"`
}

// bucketSnap is one non-empty histogram bucket: count of observations
// with value <= Le (Le is +Inf for the overflow bucket, rendered as 0
// with Inf=true).
type bucketSnap struct {
	Le  float64 `json:"le"`
	Inf bool    `json:"inf,omitempty"`
	N   int64   `json:"n"`
}

func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := bucketSnap{N: n}
		if i < len(histBounds) {
			b.Le = histBounds[i]
		} else {
			b.Inf = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// snapshot is the JSON form of a whole registry.
type snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]histSnapshot `json:"histograms,omitempty"`
}

func (r *Registry) snap() snapshot {
	s := snapshot{}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]histSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// WriteText renders a sorted, line-oriented snapshot — the format
// `exlrun -metrics` prints:
//
//	counter dispatch_fragments_total{target=sql} 2
//	gauge engine_plan_cubes 5
//	histogram target_latency_ms{target=sql} count=2 sum=3.400 p50=1 p95=2.5 p99=2.5
//
// A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.snap()
	var lines []string
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, v))
	}
	for n, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("histogram %s count=%d sum=%.3f p50=%g p95=%g p99=%g",
			n, h.Count, h.Sum, h.P50, h.P95, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one JSON object (keys sorted by
// encoding/json's map ordering). A nil registry writes "{}".
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(r.snap())
}
