// Package obs is EXLEngine's zero-dependency observability layer:
// tracing spans propagated through context.Context, and a lock-cheap
// metrics registry of counters, gauges and histograms.
//
// The design goal is that observability is free when it is off. Every
// entry point is nil-safe: a context without a Tracer makes StartSpan
// return a nil *Span whose methods no-op, and a nil *Registry hands out
// nil instruments whose methods no-op, so instrumented code never has to
// branch on "is tracing enabled" and the fault-free hot path pays only a
// handful of context lookups (BenchmarkTracedRun keeps this honest).
//
// Spans form a tree: StartSpan opens a child of the context's current
// span (or a new root) and returns a derived context carrying the new
// span, so nested pipeline stages — compile, determination, translation,
// dispatch attempts, target execution — nest automatically. Exporters
// consume the finished tree: WriteTree renders a human-readable indented
// tree, WriteJSONL emits one JSON object per span.
package obs

import (
	"context"
	"strconv"
	"strings"
	"time"
)

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
)

// ContextWithTracer returns a context carrying the tracer. Spans started
// from the returned context (and its descendants) are recorded in t. A
// nil tracer returns ctx unchanged.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithMetrics returns a context carrying the metrics registry. A
// nil registry returns ctx unchanged.
func ContextWithMetrics(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey, r)
}

// MetricsFrom returns the metrics registry carried by the context, or
// nil. A nil registry is safe to use: its instruments no-op.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey).(*Registry)
	return r
}

// StartSpan opens a span named name under the context's current span (or
// as a root span) and returns a derived context in which the new span is
// current. Without a tracer in the context it returns ctx unchanged and a
// nil span, whose methods all no-op.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	s := t.start(name, parent, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// CurrentSpan returns the innermost span carried by the context, or nil.
// Use it to annotate an enclosing span from deeper in the call stack.
func CurrentSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Attr is one key/value attribute of a span. Values are pre-rendered
// strings so exports need no reflection.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: strconv.Itoa(v)} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Val: strconv.FormatBool(v)} }

// Dur builds a duration attribute.
func Dur(key string, d time.Duration) Attr { return Attr{Key: key, Val: d.String()} }

// Strings builds a comma-joined list attribute.
func Strings(key string, vals []string) Attr {
	return Attr{Key: key, Val: strings.Join(vals, ",")}
}

// Float builds a float attribute with a compact rendering.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Val: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Label renders a metric name with label pairs in a fixed order:
// name{k1=v1,k2=v2}. Instruments are keyed by the rendered string, so the
// same pairs in the same order always address the same instrument.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Canonical metric names recorded by the engine and dispatcher. Labelled
// variants are rendered with Label (e.g. dispatch_fragments_total{target=sql}).
const (
	// MetricRuns counts Engine.Run invocations.
	MetricRuns = "engine_runs_total"
	// MetricRunErrors counts runs that returned an error.
	MetricRunErrors = "engine_run_errors_total"
	// MetricFragments counts fragments completed, labelled by the target
	// that finally executed them.
	MetricFragments = "dispatch_fragments_total"
	// MetricRetries counts same-target retries of transient failures.
	MetricRetries = "dispatch_retries_total"
	// MetricFallbacks counts fallback targets tried after a target was
	// exhausted.
	MetricFallbacks = "dispatch_fallbacks_total"
	// MetricEgdViolations counts attempts that failed on a functionality
	// egd violation.
	MetricEgdViolations = "dispatch_egd_violations_total"
	// MetricPanics counts attempts that ended in a recovered panic.
	MetricPanics = "dispatch_panics_total"
	// MetricTuplesRead counts tuples read by successful fragment
	// executions, labelled by target.
	MetricTuplesRead = "target_tuples_read_total"
	// MetricTuplesWritten counts tuples produced by successful fragment
	// executions, labelled by target.
	MetricTuplesWritten = "target_tuples_written_total"
	// MetricTargetLatency is a per-target histogram of successful
	// fragment execution latencies, in milliseconds.
	MetricTargetLatency = "target_latency_ms"
	// MetricCompileCacheHits counts compilations served from the
	// compiled-program cache (parse/analyze/generate skipped).
	MetricCompileCacheHits = "compile_cache_hits_total"
	// MetricCompileCacheMisses counts compilations that ran the full
	// pipeline and populated the cache.
	MetricCompileCacheMisses = "compile_cache_misses_total"
	// MetricStoreWALBytes counts bytes appended to the durable store's
	// write-ahead log (record framing included).
	MetricStoreWALBytes = "store_wal_bytes_total"
	// MetricStoreWALRecords counts commit records appended to the WAL.
	MetricStoreWALRecords = "store_wal_records_total"
	// MetricStoreFsyncs counts fsync calls issued by the durable store's
	// WAL; with group commit, one fsync may cover several commits.
	MetricStoreFsyncs = "store_fsyncs_total"
	// MetricStoreSegments counts segment snapshots written (recovery
	// snapshots and compactions).
	MetricStoreSegments = "store_segments_total"
	// MetricStoreRecoveryMS is the wall time the last Open spent
	// recovering the store, in milliseconds.
	MetricStoreRecoveryMS = "store_recovery_ms"
	// MetricStoreTruncatedRecords counts torn or corrupt WAL tails cut
	// off during recovery.
	MetricStoreTruncatedRecords = "store_wal_truncated_records_total"
	// MetricAdmitted counts runs admitted by the governor (immediately or
	// after queueing).
	MetricAdmitted = "governor_admitted_total"
	// MetricShed counts runs rejected by the governor, labelled by reason
	// (queue_full, deadline, memory, shutdown).
	MetricShed = "governor_shed_total"
	// MetricQueueDepth is the current number of runs waiting for an
	// admission slot.
	MetricQueueDepth = "governor_queue_depth"
	// MetricInFlight is the current number of admitted, unreleased runs.
	MetricInFlight = "governor_inflight_runs"
	// MetricQueueWait is a histogram of admission queue wait times in
	// milliseconds (admitted runs only).
	MetricQueueWait = "governor_queue_wait_ms"
	// MetricMemReserved is the memory currently reserved against the
	// process-wide budget, in bytes.
	MetricMemReserved = "governor_mem_reserved_bytes"
	// MetricMemPeak is the high-water mark of reserved memory, in bytes.
	// Under a configured budget it never exceeds the budget.
	MetricMemPeak = "governor_mem_peak_bytes"
	// MetricMemDegraded counts runs degraded (parallel dispatch off) to
	// fit the memory budget instead of being rejected.
	MetricMemDegraded = "governor_mem_degraded_total"
	// MetricBreakerState is a per-target gauge of circuit-breaker state:
	// 0 closed, 1 half-open, 2 open.
	MetricBreakerState = "breaker_state"
	// MetricBreakerTrips counts closed→open transitions, per target.
	MetricBreakerTrips = "breaker_trips_total"
	// MetricBreakerSkips counts fragment targets skipped by the dispatcher
	// because their breaker was open, per target.
	MetricBreakerSkips = "dispatch_breaker_skips_total"
	// MetricSQLRuleApplies counts analyzer rule applications that changed
	// the plan, labelled by rule.
	MetricSQLRuleApplies = "sql_analyzer_rule_applies_total"
	// MetricSQLOpRows counts rows emitted by vectorized executor
	// operators, labelled by operator kind.
	MetricSQLOpRows = "sql_operator_rows_total"
	// MetricSQLBatches counts columnar batches emitted by vectorized
	// executor operators, labelled by operator kind.
	MetricSQLBatches = "sql_operator_batches_total"
	// MetricIncrFragments counts fragments maintained incrementally from
	// input deltas, labelled by the target that ran them.
	MetricIncrFragments = "dispatch_incremental_fragments_total"
	// MetricIncrFellBack counts fragments that were asked to run
	// incrementally but fell back to a full recompute, labelled by target.
	MetricIncrFellBack = "dispatch_incremental_fellback_total"
	// MetricIncrDeltaTuples counts input delta tuples propagated into
	// incremental fragments — the data an incremental run actually moved.
	MetricIncrDeltaTuples = "incremental_delta_tuples_total"
	// MetricIncrFullTuples counts the full size of the changed input
	// relations those deltas replaced; the ratio against
	// MetricIncrDeltaTuples is the data-movement saving.
	MetricIncrFullTuples = "incremental_full_tuples_total"
	// MetricIncrSkippedCubes counts derived cubes skipped by incremental
	// runs because their memoized input generations were current.
	MetricIncrSkippedCubes = "engine_incremental_skipped_cubes_total"
)
