package obs

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"exlengine/internal/exlerr"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a clock that advances one millisecond per reading,
// making span durations deterministic.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0).UTC()
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

// buildTrace records a small but representative run trace: nested spans,
// attributes, a failed attempt with a classified error, and a backoff.
func buildTrace() *Tracer {
	tr := NewTracer()
	tr.Now = fakeClock()
	ctx := ContextWithTracer(context.Background(), tr)

	rctx, run := StartSpan(ctx, "run", String("mode", "all"))
	_, det := StartSpan(rctx, "determine", Int("cubes", 5))
	det.SetAttr(Int("fragments", 1))
	det.End()

	fctx, frag := StartSpan(rctx, "fragment", Int("index", 0), Strings("cubes", []string{"GDP", "PQR"}), String("target", "sql"))
	_, att1 := StartSpan(fctx, "attempt", String("target", "sql"), Int("n", 1))
	att1.EndErr(exlerr.New(exlerr.Transient, errors.New("connection reset")))
	_, back := StartSpan(fctx, "backoff", Dur("delay", 10*time.Millisecond))
	back.End()
	_, att2 := StartSpan(fctx, "attempt", String("target", "sql"), Int("n", 2))
	att2.End()
	frag.SetAttr(String("final", "sql"))
	frag.End()
	run.End()
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteTreeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTree(&buf, buildTrace()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tree.golden", buf.Bytes())
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, buildTrace()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spans.jsonl.golden", buf.Bytes())
}

func TestNoTracerIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything", String("k", "v"))
	if s != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without a tracer must return the context unchanged")
	}
	// All nil-span methods must be safe.
	s.SetAttr(Int("n", 1))
	s.End()
	s.EndErr(errors.New("x"))
	if s.Find("anything") != nil || s.FindAll("x") != nil || s.Children() != nil || s.Parent() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if _, ok := s.Attr("k"); ok {
		t.Fatal("nil span has no attributes")
	}
	// Exporters on a nil tracer write nothing.
	var buf bytes.Buffer
	if err := WriteTree(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatal("WriteTree(nil) must write nothing")
	}
	if err := WriteJSONL(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatal("WriteJSONL(nil) must write nothing")
	}
}

func TestCurrentSpanAnnotation(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, s := StartSpan(ctx, "outer")
	CurrentSpan(ctx).SetAttr(String("deep", "yes"))
	s.End()
	if v, ok := tr.Roots()[0].Attr("deep"); !ok || v != "yes" {
		t.Fatalf("attribute set through CurrentSpan missing: %v %v", v, ok)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer()
	tr.Now = fakeClock()
	ctx := ContextWithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "x")
	s.End()
	d := tr.Roots()[0].Dur
	s.EndErr(errors.New("late"))
	if tr.Roots()[0].Dur != d || tr.Roots()[0].Err != "" {
		t.Fatal("a second End must not alter the span")
	}
}

func TestCancellationClass(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "x")
	s.EndErr(context.Canceled)
	if got := tr.Roots()[0].Class; got != "cancelled" {
		t.Fatalf("Class = %q, want cancelled", got)
	}
}

func TestFindAndReset(t *testing.T) {
	tr := buildTrace()
	root := tr.Roots()[0]
	if root.Find("backoff") == nil {
		t.Fatal("Find missed the backoff span")
	}
	if n := len(root.FindAll("attempt")); n != 2 {
		t.Fatalf("FindAll(attempt) = %d spans, want 2", n)
	}
	tr.Reset()
	if len(tr.Roots()) != 0 {
		t.Fatal("Reset must clear the roots")
	}
	ctx := ContextWithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "fresh")
	s.End()
	if tr.Roots()[0].ID != 1 {
		t.Fatal("Reset must restart span numbering")
	}
}

// TestConcurrentSpans exercises the tracer under parallel span creation,
// annotation and export — run with -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	rctx, root := StartSpan(ctx, "run")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, s := StartSpan(rctx, "fragment", Int("index", i))
			for j := 0; j < 8; j++ {
				_, a := StartSpan(sctx, "attempt", Int("n", j+1))
				a.SetAttr(Bool("ok", true))
				a.End()
			}
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if n := len(root.FindAll("attempt")); n != 16*8 {
		t.Fatalf("recorded %d attempt spans, want %d", n, 16*8)
	}
	var buf bytes.Buffer
	if err := WriteTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
}
