package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteTree renders the tracer's span tree as indented, human-readable
// text — the format `exlrun -trace` prints:
//
//	run 5ms {mode=all}
//	  determine 1ms {cubes=5 fragments=2}
//	  dispatch 3ms {fragments=2 parallel=true}
//	    fragment 2ms {index=0 cubes=GDP target=sql}
//	      attempt 1ms {target=sql n=1} !transient: connection reset
//
// Failed spans carry a `!class: message` suffix. A nil tracer writes
// nothing.
func WriteTree(w io.Writer, t *Tracer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.roots {
		if err := writeTreeSpan(w, r, 0); err != nil {
			return err
		}
	}
	return nil
}

// writeTreeSpan renders one span and its subtree; the caller holds the
// tracer lock.
func writeTreeSpan(w io.Writer, s *Span, depth int) error {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	b.WriteByte(' ')
	b.WriteString(s.Dur.String())
	if len(s.Attrs) > 0 {
		b.WriteString(" {")
		for i, a := range s.Attrs {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(a.Key)
			b.WriteByte('=')
			b.WriteString(a.Val)
		}
		b.WriteByte('}')
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " !%s: %s", s.Class, s.Err)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range s.children {
		if err := writeTreeSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// spanRecord is the JSONL wire form of one span. Start offsets are
// relative to the first root span's start, so traces are comparable
// across runs (and deterministic under an injected clock).
type spanRecord struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
	Err     string `json:"err,omitempty"`
	Class   string `json:"class,omitempty"`
}

// WriteJSONL emits one JSON object per span, pre-order, one per line —
// the format `exlrun -trace=json` prints. A nil tracer writes nothing.
func WriteJSONL(w io.Writer, t *Tracer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.roots) == 0 {
		return nil
	}
	base := t.roots[0].Start
	enc := json.NewEncoder(w)
	for _, r := range t.roots {
		if err := writeJSONLSpan(enc, r, base); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONLSpan encodes one span and its subtree; the caller holds the
// tracer lock.
func writeJSONLSpan(enc *json.Encoder, s *Span, base time.Time) error {
	rec := spanRecord{
		ID:      s.ID,
		Name:    s.Name,
		StartUS: s.Start.Sub(base).Microseconds(),
		DurUS:   s.Dur.Microseconds(),
		Attrs:   s.Attrs,
		Err:     s.Err,
		Class:   s.Class,
	}
	if s.parent != nil {
		rec.Parent = s.parent.ID
	}
	if err := enc.Encode(rec); err != nil {
		return err
	}
	for _, c := range s.children {
		if err := writeJSONLSpan(enc, c, base); err != nil {
			return err
		}
	}
	return nil
}
