package obs

import (
	"sync"
	"time"

	"exlengine/internal/exlerr"
)

// Tracer records spans into a tree. It is safe for concurrent use: spans
// of parallel dispatch waves may start, annotate and end concurrently.
//
// The zero value is usable; NewTracer is provided for symmetry with
// NewRegistry.
type Tracer struct {
	// Now is the clock used for span start/end times. Nil means
	// time.Now. Tests inject a deterministic clock to make exported
	// durations reproducible.
	Now func() time.Time

	mu     sync.Mutex
	nextID int64
	roots  []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

func (t *Tracer) start(name string, parent *Span, attrs []Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{
		ID:     t.nextID,
		Name:   name,
		Start:  t.now(),
		Attrs:  attrs,
		tracer: t,
		parent: parent,
	}
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	return s
}

// Roots returns a snapshot of the root spans recorded so far.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Reset discards every recorded span and restarts span numbering, so one
// tracer can be reused across runs (benchmarks reset between iterations).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots = nil
	t.nextID = 0
}

// Span is one timed operation in the trace tree. Exported fields are
// read-only for consumers; they must not be mutated after End.
type Span struct {
	ID    int64
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs []Attr
	// Err and Class describe the failure the span ended with; both are
	// empty for successful spans. Class is the exlerr taxonomy class
	// ("transient", "fatal", "egd-violation") or "cancelled".
	Err   string
	Class string

	tracer   *Tracer
	parent   *Span
	children []*Span
	ended    bool
}

// SetAttr appends attributes to the span. Safe on a nil span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.Attrs = append(s.Attrs, attrs...)
}

// End closes the span successfully. Ending twice is a no-op. Safe on a
// nil span.
func (s *Span) End() { s.end(nil) }

// EndErr closes the span, recording the error and its exlerr class when
// err is non-nil. Safe on a nil span.
func (s *Span) EndErr(err error) { s.end(err) }

func (s *Span) end(err error) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.Dur = s.tracer.now().Sub(s.Start)
	if err != nil {
		s.Err = err.Error()
		if exlerr.IsCancellation(err) {
			s.Class = "cancelled"
		} else {
			s.Class = exlerr.ClassOf(err).String()
		}
	}
}

// Children returns a snapshot of the span's child spans, in start order.
// Safe on a nil span.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Parent returns the span's parent, or nil for a root span.
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span named name in a depth-first walk of the
// subtree rooted at s, including s itself.
func (s *Span) FindAll(name string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children() {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// Attr returns the value of the first attribute with the key, and whether
// it exists.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}
