package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Inc()
	r.Counter("a_total").Add(2)
	if got := r.Counter("a_total").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("g").Set(7)
	if got := r.Gauge("g").Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Histogram("x").ObserveDuration(time.Second)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Fatal("nil registry instruments must read zero")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil WriteText must write nothing")
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil || strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil WriteJSON = %q, want {}", buf.String())
	}
	if MetricsFrom(context.Background()) != nil {
		t.Fatal("MetricsFrom of a bare context must be nil")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations and 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(0.8) // bucket le=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(80) // bucket le=100
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 90*0.8+10.0*80; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want ~%v", got, want)
	}
	if p50 := h.Quantile(0.50); p50 != 1 {
		t.Errorf("p50 = %v, want 1", p50)
	}
	if p95 := h.Quantile(0.95); p95 != 100 {
		t.Errorf("p95 = %v, want 100", p95)
	}
	// Overflow bucket reports the largest finite bound.
	h2 := r.Histogram("huge")
	h2.Observe(1e9)
	if q := h2.Quantile(0.5); q != histBounds[len(histBounds)-1] {
		t.Errorf("overflow quantile = %v", q)
	}
	// Empty histogram.
	if q := r.Histogram("empty").Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("fragments_total", "target", "sql"); got != "fragments_total{target=sql}" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("x", "a", "1", "b", "2"); got != "x{a=1,b=2}" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("bare"); got != "bare" {
		t.Fatalf("Label = %q", got)
	}
}

func TestWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label(MetricFragments, "target", "sql")).Add(2)
	r.Counter(MetricRetries).Inc()
	r.Gauge("engine_plan_cubes").Set(5)
	r.Histogram(Label(MetricTargetLatency, "target", "sql")).Observe(0.9)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "counter dispatch_fragments_total{target=sql} 2\n" +
		"counter dispatch_retries_total 1\n" +
		"gauge engine_plan_cubes 5\n" +
		"histogram target_latency_ms{target=sql} count=1 sum=0.900 p50=1 p95=1 p99=1\n"
	if buf.String() != want {
		t.Errorf("WriteText:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(4)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64   `json:"count"`
			Sum     float64 `json:"sum"`
			Buckets []struct {
				Le float64 `json:"le"`
				N  int64   `json:"n"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Counters["c"] != 4 || got.Gauges["g"] != -2 {
		t.Errorf("snapshot = %+v", got)
	}
	h := got.Histograms["h"]
	if h.Count != 1 || h.Sum != 3 || len(h.Buckets) != 1 || h.Buckets[0].Le != 5 || h.Buckets[0].N != 1 {
		t.Errorf("histogram snapshot = %+v", h)
	}
}

// TestConcurrentMetrics exercises lock-free updates — run with -race.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(float64(j % 7))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
