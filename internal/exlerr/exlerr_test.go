package exlerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"testing"

	"exlengine/internal/model"
)

func TestClassOf(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err  error
		want Class
	}{
		{New(Transient, base), Transient},
		{New(Fatal, base), Fatal},
		{New(EgdViolation, base), EgdViolation},
		{Transientf("t %d", 1), Transient},
		{Fatalf("f %d", 2), Fatal},
		{base, Fatal},
		{model.ErrFunctional, EgdViolation},
		{fmt.Errorf("put: %w", model.ErrFunctional), EgdViolation},
		{fmt.Errorf("outer: %w", New(Transient, base)), Transient},
	}
	for i, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("case %d (%v): class %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestNewNil(t *testing.T) {
	if New(Transient, nil) != nil {
		t.Error("New(class, nil) must be nil")
	}
}

func TestUnwrap(t *testing.T) {
	base := errors.New("boom")
	err := New(Transient, fmt.Errorf("wrap: %w", base))
	if !errors.Is(err, base) {
		t.Error("classified error must unwrap to its cause")
	}
}

func TestRecoveredPanic(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = Recovered(r, debug.Stack())
			}
		}()
		panic("kaboom")
	}()
	if err == nil {
		t.Fatal("panic not converted")
	}
	if !IsPanic(err) {
		t.Error("IsPanic must detect a recovered panic")
	}
	if ClassOf(err) != Fatal {
		t.Errorf("recovered panic must be Fatal, got %v", ClassOf(err))
	}
	var p *PanicError
	if !errors.As(err, &p) || p.Value != "kaboom" || len(p.Stack) == 0 {
		t.Errorf("panic payload lost: %+v", p)
	}
}

func TestIsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !IsCancellation(ctx.Err()) {
		t.Error("context.Canceled must be a cancellation")
	}
	if !IsCancellation(fmt.Errorf("run: %w", context.DeadlineExceeded)) {
		t.Error("wrapped DeadlineExceeded must be a cancellation")
	}
	if IsCancellation(errors.New("boom")) {
		t.Error("ordinary error is not a cancellation")
	}
}

func TestClassString(t *testing.T) {
	if Transient.String() != "transient" || Fatal.String() != "fatal" || EgdViolation.String() != "egd-violation" {
		t.Error("class names changed")
	}
}
