// Package exlerr defines the typed error taxonomy of the fault-tolerant
// dispatcher. Every failure surfaced by a target engine is classified as
// Transient (worth retrying on the same target), Fatal (the target cannot
// execute this fragment — degrade to another target), or EgdViolation (the
// data itself violates a functionality egd, so every target would fail the
// same way and neither retry nor fallback can help).
package exlerr

import (
	"context"
	"errors"
	"fmt"

	"exlengine/internal/model"
)

// Class partitions failures by the recovery action they admit.
type Class int

// Failure classes, ordered by increasing permanence.
const (
	// Transient failures are expected to succeed on retry (connection
	// resets, snapshot races, overload shedding).
	Transient Class = iota
	// Fatal failures are permanent on this target (translation gaps,
	// panics, missing native support) but another target may succeed.
	Fatal
	// EgdViolation means the source data violates a functionality egd;
	// the failure is a property of the data-exchange setting, not of the
	// engine, so no retry or fallback can repair it.
	EgdViolation
	// Overload means the engine shed the work to protect itself:
	// admission queue full, deadline unmeetable, memory budget exceeded,
	// or every permitted backend's circuit breaker open. The work was
	// never attempted — the caller may resubmit later, but the engine
	// itself will not retry or degrade (doing so is what it is shedding).
	Overload
)

// String renders the class for reports and logs.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Fatal:
		return "fatal"
	case EgdViolation:
		return "egd-violation"
	case Overload:
		return "overload"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Error attaches a Class to an underlying error.
type Error struct {
	Class Class
	Err   error
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Class.String() + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// New wraps err with an explicit class. A nil err returns nil.
func New(class Class, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: class, Err: err}
}

// Transientf builds a classified transient error from a format string.
func Transientf(format string, args ...any) error {
	return &Error{Class: Transient, Err: fmt.Errorf(format, args...)}
}

// Fatalf builds a classified fatal error from a format string.
func Fatalf(format string, args ...any) error {
	return &Error{Class: Fatal, Err: fmt.Errorf(format, args...)}
}

// Overloadf builds a classified overload (load-shed) error from a format
// string.
func Overloadf(format string, args ...any) error {
	return &Error{Class: Overload, Err: fmt.Errorf(format, args...)}
}

// IsOverload reports whether the error is an overload shed: the engine
// rejected or abandoned the work to protect itself, without attempting
// it. Overloaded is the one class a caller can act on mechanically —
// back off and resubmit.
func IsOverload(err error) bool { return ClassOf(err) == Overload }

// PanicError is a panic recovered from a target engine or an ETL step
// goroutine, converted into an ordinary (Fatal) error.
type PanicError struct {
	Value any    // the value passed to panic()
	Stack []byte // the goroutine stack at recovery time
}

// Error implements the error interface.
func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// Recovered converts a recover() value into a classified Fatal error. The
// stack should come from runtime/debug.Stack at the recovery site.
func Recovered(v any, stack []byte) error {
	return &Error{Class: Fatal, Err: &PanicError{Value: v, Stack: stack}}
}

// IsPanic reports whether the error records a recovered panic.
func IsPanic(err error) bool {
	var p *PanicError
	return errors.As(err, &p)
}

// IsCancellation reports whether the error stems from context
// cancellation or deadline expiry. Cancellation is not a target failure:
// the dispatcher must stop, not retry or degrade.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ClassOf classifies an arbitrary error: explicit Error wrappers keep
// their class, functionality-egd violations (model.ErrFunctional, which
// chase.ErrChaseFailure aliases) are EgdViolation, and everything else —
// including unwrapped engine errors — defaults to Fatal, the conservative
// choice (no blind retry of unknown failures).
func ClassOf(err error) Class {
	var e *Error
	if errors.As(err, &e) {
		return e.Class
	}
	if errors.Is(err, model.ErrFunctional) {
		return EgdViolation
	}
	return Fatal
}
