// Package cli is the flag surface shared by the EXLEngine command-line
// tools. exlrun, exlsh, exlbench and exlserve all expose the same durable
// store, observability and resource-governor knobs; this package defines
// them once — names, defaults and help strings — and turns the parsed
// values into engine options, so the tools cannot drift apart.
//
// The flags are grouped (store, observability, governor) because not
// every tool wants every group: exlsh has no -trace flag (tracing is the
// interactive \trace command), and exlserve replaces -store with its
// per-tenant -data-dir layout.
package cli

import (
	"flag"
	"fmt"
	"io"

	"exlengine/internal/engine"
	"exlengine/internal/obs"
	"exlengine/internal/store/durable"
)

// TraceFlag implements -trace[=json]: a boolean flag that also accepts an
// output format as its value.
type TraceFlag struct {
	On   bool
	JSON bool
}

// String renders the flag's current value.
func (f *TraceFlag) String() string {
	switch {
	case f.On && f.JSON:
		return "json"
	case f.On:
		return "true"
	default:
		return "false"
	}
}

// Set parses -trace, -trace=tree, -trace=json, -trace=false.
func (f *TraceFlag) Set(s string) error {
	switch s {
	case "", "true", "tree":
		f.On, f.JSON = true, false
	case "json":
		f.On, f.JSON = true, true
	case "false":
		f.On, f.JSON = false, false
	default:
		return fmt.Errorf("invalid trace format %q (want tree or json)", s)
	}
	return nil
}

// IsBoolFlag lets the flag package accept a bare -trace.
func (f *TraceFlag) IsBoolFlag() bool { return true }

// Flags holds the parsed values of the shared flag groups.
type Flags struct {
	StoreDir      string
	Trace         TraceFlag
	Metrics       bool
	MaxConcurrent int
	MemBudget     int64
}

// RegisterStore adds -store to the flag set.
func (f *Flags) RegisterStore(fs *flag.FlagSet) {
	fs.StringVar(&f.StoreDir, "store", "",
		"durable store directory (WAL + snapshots); empty = in-memory only")
}

// RegisterObs adds -trace and -metrics to the flag set.
func (f *Flags) RegisterObs(fs *flag.FlagSet) {
	fs.Var(&f.Trace, "trace", "print the run's span tree to stderr (-trace=json for JSON Lines)")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the run's metrics to stderr")
}

// RegisterGovernor adds -max-concurrent and -mem-budget to the flag set
// with the given defaults (the tools disagree on defaults: 0 = unlimited
// for one-shot runs, a real bound for servers and load harnesses).
func (f *Flags) RegisterGovernor(fs *flag.FlagSet, defaultConcurrent int, defaultBudget int64) {
	fs.IntVar(&f.MaxConcurrent, "max-concurrent", defaultConcurrent,
		"maximum concurrently executing runs (0 = unlimited)")
	fs.Int64Var(&f.MemBudget, "mem-budget", defaultBudget,
		"process-wide cube-materialization budget in bytes (0 = unlimited)")
}

// Register adds every shared flag group to the flag set with one-shot
// defaults (unlimited governor) and returns the value holder.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.RegisterStore(fs)
	f.RegisterObs(fs)
	f.RegisterGovernor(fs, 0, 0)
	return f
}

// Observability bundles the sinks the flags asked for. Nil fields mean
// the corresponding flag was off.
type Observability struct {
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// Sinks builds the tracer and metrics registry the flags request. The
// metrics registry is the process-wide obs.Default() — a CLI is a
// single-tenant process, so one shared sink is exactly right (servers
// build one registry per tenant instead).
func (f *Flags) Sinks() *Observability {
	o := &Observability{}
	if f.Trace.On {
		o.Tracer = obs.NewTracer()
	}
	if f.Metrics {
		o.Metrics = obs.Default()
	}
	return o
}

// EngineOptions turns the parsed flags into engine options: governor
// bounds, observability sinks, and — when -store is set — a durable
// store opened under the directory. The returned cleanup closes the
// store (nil-safe to call always); the durable store's recovery stats
// are returned for tools that print them.
func (f *Flags) EngineOptions(o *Observability) (opts []engine.Option, cleanup func() error, rec *durable.RecoveryStats, err error) {
	cleanup = func() error { return nil }
	if f.MaxConcurrent > 0 {
		opts = append(opts, engine.MaxConcurrentRuns(f.MaxConcurrent))
	}
	if f.MemBudget > 0 {
		opts = append(opts, engine.MemoryBudget(f.MemBudget))
	}
	if o != nil {
		if o.Tracer != nil {
			opts = append(opts, engine.WithTracer(o.Tracer))
		}
		if o.Metrics != nil {
			opts = append(opts, engine.WithMetrics(o.Metrics))
		}
	}
	if f.StoreDir != "" {
		var dopts []durable.Option
		if o != nil && o.Metrics != nil {
			dopts = append(dopts, durable.WithMetrics(o.Metrics))
		}
		st, oerr := durable.Open(f.StoreDir, dopts...)
		if oerr != nil {
			return nil, cleanup, nil, oerr
		}
		r := st.Recovery()
		rec = &r
		cleanup = st.Close
		opts = append(opts, engine.WithStore(st))
	}
	return opts, cleanup, rec, nil
}

// Dump writes the collected trace and metrics to w in the formats the
// flags chose. Diagnostics of a failed run are exactly what one wants to
// look at, so callers run it before checking the run error.
func (f *Flags) Dump(w io.Writer, o *Observability) {
	if o == nil {
		return
	}
	if f.Trace.On && o.Tracer != nil {
		if f.Trace.JSON {
			obs.WriteJSONL(w, o.Tracer)
		} else {
			obs.WriteTree(w, o.Tracer)
		}
	}
	if f.Metrics && o.Metrics != nil {
		o.Metrics.WriteText(w)
	}
}
