package matlabgen

import (
	"strings"
	"testing"

	"exlengine/internal/frame"
)

func TestMatlabPadMerge(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A, B)
`)
	ml, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"outerjoin(", "'MergeKeys', true", "fillmissing("} {
		if !strings.Contains(ml, frag) {
			t.Errorf("Matlab pad output missing %q:\n%s", frag, ml)
		}
	}
}

func TestMatlabRenameStep(t *testing.T) {
	out := PrintProgram(&frame.Program{Steps: []frame.Step{
		frame.Rename{Out: "y", In: "x", From: []string{"a"}, To: []string{"b"}},
	}})
	if !strings.Contains(out, "y = x;") || !strings.Contains(out, "VariableNames{'a'} = 'b'") {
		t.Errorf("rename output:\n%s", out)
	}
}

func TestMatlabFilterAndShiftExpr(t *testing.T) {
	m := compile(t, "cube A(t: quarter) measure v\nB := shift(A, -2)")
	ml, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ml, "- 2") {
		t.Errorf("negative shift missing:\n%s", ml)
	}
}
