// Package matlabgen prints frame programs as Matlab source text, following
// the paper's Section 5.2 Matlab examples: join() to compose matrices on
// key columns, element-wise .* arithmetic, groupsummary for aggregations,
// and library calls (the paper's isolateTrend) for black-box operators.
// Tables (matrices with named columns) are assumed, matching the paper's
// column-position commentary.
package matlabgen

import (
	"fmt"
	"strconv"
	"strings"

	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// Translate renders a whole mapping as a Matlab script.
func Translate(m *mapping.Mapping) (string, error) {
	script, err := frame.Translate(m)
	if err != nil {
		return "", err
	}
	return Print(script), nil
}

// Print renders a frame script as Matlab source.
func Print(s *frame.Script) string {
	var b strings.Builder
	for i, p := range s.Programs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%% tgd %s -> %s\n", p.TgdID, p.Target)
		b.WriteString(PrintProgram(p))
	}
	return b.String()
}

// PrintProgram renders one tgd's program as Matlab source.
func PrintProgram(p *frame.Program) string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(printStep(s))
	}
	return b.String()
}

func printStep(s frame.Step) string {
	switch s := s.(type) {
	case frame.Copy:
		return fmt.Sprintf("%s = %s;\n", s.Out, s.In)
	case frame.Rename:
		var b strings.Builder
		if s.Out != s.In {
			fmt.Fprintf(&b, "%s = %s;\n", s.Out, s.In)
		}
		for i := range s.From {
			fmt.Fprintf(&b, "%s.Properties.VariableNames{'%s'} = '%s';\n", s.Out, s.From[i], s.To[i])
		}
		return b.String()
	case frame.MapCol:
		return fmt.Sprintf("%s.%s = %s;\n", s.Var, s.Col, printExpr(s.E, s.Var))
	case frame.Filter:
		return fmt.Sprintf("%s = %s(%s.%s == %s, :);\n", s.Var, s.Var, s.Var, s.Col, mlLiteral(s.V))
	case frame.SelectCols:
		var b strings.Builder
		fmt.Fprintf(&b, "%s = %s(:, {%s});\n", s.Out, s.In, quoteList(s.Cols))
		if s.As != nil && !sameStrings(s.Cols, s.As) {
			fmt.Fprintf(&b, "%s.Properties.VariableNames = {%s};\n", s.Out, quoteList(s.As))
		}
		return b.String()
	case frame.Merge:
		if len(s.By) == 0 {
			return fmt.Sprintf("%s = crossjoin(%s, %s);\n", s.Out, s.X, s.Y)
		}
		return fmt.Sprintf("%s = join(%s, %s, 'Keys', {%s});\n", s.Out, s.X, s.Y, quoteList(s.By))
	case frame.GroupAgg:
		fun := mlAggFun(s.Agg)
		if len(s.By) == 0 {
			return fmt.Sprintf("%s = table(%s(%s.%s), 'VariableNames', {'%s'});\n", s.Out, fun, s.In, s.ValCol, s.OutCol)
		}
		return fmt.Sprintf("%s = groupsummary(%s, {%s}, '%s', '%s');\n", s.Out, s.In, quoteList(s.By), fun, s.ValCol)
	case frame.PadMerge:
		var b strings.Builder
		fmt.Fprintf(&b, "%s = outerjoin(%s, %s, 'Keys', {%s}, 'MergeKeys', true);\n", s.Out, s.X, s.Y, quoteList(s.Keys))
		fmt.Fprintf(&b, "%s = fillmissing(%s, 'constant', %s);\n", s.Out, s.Out, formatNum(s.Default))
		sym := "+"
		if s.Op == "sub" {
			sym = "-"
		}
		fmt.Fprintf(&b, "%s.%s = %s.%s %s %s.%s;\n", s.Out, s.OutCol, s.Out, s.XVal, sym, s.Out, s.YVal)
		return b.String()
	case frame.SeriesOp:
		return printSeriesOp(s)
	default:
		return fmt.Sprintf("%% unsupported step %T\n", s)
	}
}

// printSeriesOp follows the paper's Matlab example for tgd (4):
//
//	GDPC = isolateTrend(GDP)
func printSeriesOp(s frame.SeriesOp) string {
	switch s.Op {
	case "stl_t":
		return fmt.Sprintf("%s = isolateTrend(%s);\n", s.Out, s.In)
	case "stl_s":
		return fmt.Sprintf("%s = isolateSeasonal(%s);\n", s.Out, s.In)
	case "stl_i":
		return fmt.Sprintf("%s = isolateRemainder(%s);\n", s.Out, s.In)
	case "movavg":
		w := int(s.Params[0])
		return fmt.Sprintf("%s = %s; %s.%s = movmean(%s.%s, [%d 0]);\n",
			s.Out, s.In, s.Out, s.ValCol, s.In, s.ValCol, w-1)
	case "cumsum":
		return fmt.Sprintf("%s = %s; %s.%s = cumsum(%s.%s);\n",
			s.Out, s.In, s.Out, s.ValCol, s.In, s.ValCol)
	case "lintrend":
		return fmt.Sprintf("%s = %s; p = polyfit(1:height(%s), %s.%s', 1); %s.%s = polyval(p, 1:height(%s))';\n",
			s.Out, s.In, s.In, s.In, s.ValCol, s.Out, s.ValCol, s.In)
	default:
		return fmt.Sprintf("%s = %s(%s); %% user-defined series operator\n", s.Out, s.Op, s.In)
	}
}

func mlAggFun(agg string) string {
	switch agg {
	case "sum":
		return "sum"
	case "avg":
		return "mean"
	case "min":
		return "min"
	case "max":
		return "max"
	case "count":
		return "nnz"
	case "median":
		return "median"
	case "stddev":
		return "std"
	case "prod":
		return "prod"
	default:
		return agg
	}
}

func printExpr(e frame.Expr, f string) string {
	switch e := e.(type) {
	case frame.Col:
		return fmt.Sprintf("%s.%s", f, e.Name)
	case frame.Const:
		return formatNum(e.V)
	case frame.PShift:
		if e.N >= 0 {
			return fmt.Sprintf("(%s + %d)", printExpr(e.X, f), e.N)
		}
		return fmt.Sprintf("(%s - %d)", printExpr(e.X, f), -e.N)
	case frame.DimApply:
		return fmt.Sprintf("%s(%s)", e.Fn, printExpr(e.X, f))
	case frame.Apply:
		args := make([]string, 0, len(e.Args))
		for _, a := range e.Args {
			args = append(args, printExpr(a, f))
		}
		switch e.Op {
		case "add":
			return fmt.Sprintf("(%s + %s)", args[0], args[1])
		case "sub":
			return fmt.Sprintf("(%s - %s)", args[0], args[1])
		case "mul":
			return fmt.Sprintf("(%s .* %s)", args[0], args[1])
		case "div":
			return fmt.Sprintf("(%s ./ %s)", args[0], args[1])
		case "neg":
			return fmt.Sprintf("(-%s)", args[0])
		case "ln":
			return fmt.Sprintf("log(%s)", args[0])
		case "log":
			return fmt.Sprintf("(log(%s) / log(%s))", args[0], formatNum(e.Params[0]))
		case "pow":
			return fmt.Sprintf("(%s .^ %s)", args[0], formatNum(e.Params[0]))
		default:
			for _, p := range e.Params {
				args = append(args, formatNum(p))
			}
			return fmt.Sprintf("%s(%s)", e.Op, strings.Join(args, ", "))
		}
	default:
		return "[]"
	}
}

func quoteList(xs []string) string {
	qs := make([]string, len(xs))
	for i, x := range xs {
		qs[i] = "'" + x + "'"
	}
	return strings.Join(qs, ", ")
}

func mlLiteral(v model.Value) string {
	switch v.Kind() {
	case model.KindString, model.KindPeriod:
		return "'" + v.String() + "'"
	default:
		return v.String()
	}
}

func formatNum(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
