package matlabgen

import (
	"strings"
	"testing"

	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/workload"
)

func compile(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTranslateGDP(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	ml, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"join(", "'Keys', {'q', 'r'}", // tgd (2) as the paper's Matlab join
		".*",            // element-wise product
		"isolateTrend(", // tgd (4) as in the paper
		"groupsummary(", // aggregations
		"% tgd",         // comments
	} {
		if !strings.Contains(ml, frag) {
			t.Errorf("Matlab output missing %q:\n%s", frag, ml)
		}
	}
}

func TestMatlabSeriesOps(t *testing.T) {
	m := compile(t, `
cube A(t: quarter) measure v
MA := movavg(A, 4)
CS := cumsum(A)
LT := lintrend(A)
SS := stl_s(A)
SI := stl_i(A)
`)
	ml, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"movmean(", "cumsum(", "polyfit(", "isolateSeasonal(", "isolateRemainder("} {
		if !strings.Contains(ml, frag) {
			t.Errorf("Matlab output missing %q:\n%s", frag, ml)
		}
	}
}

func TestMatlabExpressions(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
B := log(2, A) / pow(A, 2)
`)
	ml, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"./", "log(", ".^ 2"} {
		if !strings.Contains(ml, frag) {
			t.Errorf("Matlab output missing %q:\n%s", frag, ml)
		}
	}
}

func TestMatlabGlobalAggregate(t *testing.T) {
	m := compile(t, "cube A(t: year, r: string) measure v\nTOT := max(A)")
	ml, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ml, "table(max(") {
		t.Errorf("Matlab global aggregate:\n%s", ml)
	}
}
