package rgen

import (
	"strings"
	"testing"

	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/workload"
)

func compile(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTranslateGDP(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	// The vectorial product becomes a merge on the join dimensions plus
	// element-wise arithmetic, as in the paper's Section 5.2.
	for _, frag := range []string{
		`merge(`, `by = c("q", "r")`, // tgd (2) join
		`stl(ts(`, `$time.series[, "trend"]`, // tgd (4) per the paper
		`aggregate(`, `FUN = sum`, `FUN = mean`, // tgds (1) and (3)
		"-> PCHNG",
	} {
		if !strings.Contains(r, frag) {
			t.Errorf("R output missing %q:\n%s", frag, r)
		}
	}
}

func TestRExpressions(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
B := log(2, A) + ln(A) - pow(A, 3) / (0 - A)
`)
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"log(", "base = 2", "^ 3"} {
		if !strings.Contains(r, frag) {
			t.Errorf("R output missing %q:\n%s", frag, r)
		}
	}
}

func TestRSeriesOps(t *testing.T) {
	m := compile(t, `
cube A(t: quarter) measure v
MA := movavg(A, 4)
CS := cumsum(A)
LT := lintrend(A)
`)
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"stats::filter(", "rep(1/4, 4)", "cumsum(", "fitted(lm("} {
		if !strings.Contains(r, frag) {
			t.Errorf("R output missing %q:\n%s", frag, r)
		}
	}
}

func TestRShiftAndFilterLiterals(t *testing.T) {
	m := compile(t, `
cube A(t: quarter) measure v
B := shift(A, 1)
`)
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r, "+ 1") {
		t.Errorf("R output missing shift arithmetic:\n%s", r)
	}
}

func TestRGlobalAggregate(t *testing.T) {
	m := compile(t, "cube A(t: year, r: string) measure v\nTOT := sum(A)")
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r, "data.frame(") || !strings.Contains(r, "sum(") {
		t.Errorf("R global aggregate:\n%s", r)
	}
}
