package rgen

import (
	"strings"
	"testing"

	"exlengine/internal/frame"
)

func TestRPadMerge(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A, B)
D := vsub0(A, B)
`)
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"all = TRUE)", // outer merge
		"[is.na(",     // NA fill with the default
		"<- 0",
	} {
		if !strings.Contains(r, frag) {
			t.Errorf("R pad output missing %q:\n%s", frag, r)
		}
	}
	if !strings.Contains(r, "+") || !strings.Contains(r, "-") {
		t.Errorf("R pad output missing operators:\n%s", r)
	}
}

func TestRRenameStep(t *testing.T) {
	out := PrintProgram(&frame.Program{Steps: []frame.Step{
		frame.Rename{Out: "y", In: "x", From: []string{"a"}, To: []string{"b"}},
	}})
	for _, frag := range []string{"y <- x", `names(y)[names(y) == "a"] <- "b"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("rename output missing %q:\n%s", frag, out)
		}
	}
}

func TestRFilterStep(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := stl_i(A)")
	r, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r, `"remainder"`) {
		t.Errorf("stl_i component missing:\n%s", r)
	}
}
