// Package rgen prints frame programs (the translation of schema mappings
// for matrix-oriented targets) as R source text, following the paper's
// Section 5.2 examples: merge() on dimension columns, element-wise column
// arithmetic on data frames, aggregate() for group-bys, and stl() with
// component extraction for seasonal decomposition.
//
// The printed text is for export to an R runtime; its semantics is the
// frame IR's, which internal/frame executes and tests against the chase.
package rgen

import (
	"fmt"
	"strconv"
	"strings"

	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// Translate renders a whole mapping as an R script.
func Translate(m *mapping.Mapping) (string, error) {
	script, err := frame.Translate(m)
	if err != nil {
		return "", err
	}
	return Print(script), nil
}

// Print renders a frame script as R source.
func Print(s *frame.Script) string {
	var b strings.Builder
	for i, p := range s.Programs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "# tgd %s -> %s\n", p.TgdID, p.Target)
		b.WriteString(PrintProgram(p))
	}
	return b.String()
}

// PrintProgram renders one tgd's program as R source.
func PrintProgram(p *frame.Program) string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(printStep(s))
	}
	return b.String()
}

func printStep(s frame.Step) string {
	switch s := s.(type) {
	case frame.Copy:
		return fmt.Sprintf("%s <- %s\n", s.Out, s.In)
	case frame.Rename:
		var b strings.Builder
		if s.Out != s.In {
			fmt.Fprintf(&b, "%s <- %s\n", s.Out, s.In)
		}
		for i := range s.From {
			fmt.Fprintf(&b, "names(%s)[names(%s) == %q] <- %q\n", s.Out, s.Out, s.From[i], s.To[i])
		}
		return b.String()
	case frame.MapCol:
		return fmt.Sprintf("%s$%s <- %s\n", s.Var, s.Col, printExpr(s.E, s.Var))
	case frame.Filter:
		return fmt.Sprintf("%s <- %s[%s$%s == %s, ]\n", s.Var, s.Var, s.Var, s.Col, rLiteral(s.V))
	case frame.SelectCols:
		var b strings.Builder
		fmt.Fprintf(&b, "%s <- %s[, c(%s)]\n", s.Out, s.In, quoteList(s.Cols))
		if s.As != nil && !sameStrings(s.Cols, s.As) {
			fmt.Fprintf(&b, "colnames(%s) <- c(%s)\n", s.Out, quoteList(s.As))
		}
		return b.String()
	case frame.Merge:
		if len(s.By) == 0 {
			return fmt.Sprintf("%s <- merge(%s, %s, by = NULL)\n", s.Out, s.X, s.Y)
		}
		return fmt.Sprintf("%s <- merge(%s, %s, by = c(%s))\n", s.Out, s.X, s.Y, quoteList(s.By))
	case frame.GroupAgg:
		fun := rAggFun(s.Agg)
		if len(s.By) == 0 {
			return fmt.Sprintf("%s <- data.frame(%s = %s(%s$%s))\n", s.Out, s.OutCol, fun, s.In, s.ValCol)
		}
		var by []string
		for _, c := range s.By {
			by = append(by, fmt.Sprintf("%s = %s$%s", c, s.In, c))
		}
		return fmt.Sprintf("%s <- aggregate(list(%s = %s$%s), by = list(%s), FUN = %s)\n",
			s.Out, s.OutCol, s.In, s.ValCol, strings.Join(by, ", "), fun)
	case frame.PadMerge:
		var b strings.Builder
		fmt.Fprintf(&b, "%s <- merge(%s, %s, by = c(%s), all = TRUE)\n", s.Out, s.X, s.Y, quoteList(s.Keys))
		fmt.Fprintf(&b, "%s$%s[is.na(%s$%s)] <- %s\n", s.Out, s.XVal, s.Out, s.XVal, formatNum(s.Default))
		fmt.Fprintf(&b, "%s$%s[is.na(%s$%s)] <- %s\n", s.Out, s.YVal, s.Out, s.YVal, formatNum(s.Default))
		sym := "+"
		if s.Op == "sub" {
			sym = "-"
		}
		fmt.Fprintf(&b, "%s$%s <- %s$%s %s %s$%s\n", s.Out, s.OutCol, s.Out, s.XVal, sym, s.Out, s.YVal)
		return b.String()
	case frame.SeriesOp:
		return printSeriesOp(s)
	default:
		return fmt.Sprintf("# unsupported step %T\n", s)
	}
}

// printSeriesOp follows the paper's stl example:
//
//	GDPC <- stl(GDP, "periodic")
//	GDPT <- GDPC$time.series[, "trend"]
func printSeriesOp(s frame.SeriesOp) string {
	var b strings.Builder
	switch s.Op {
	case "stl_t", "stl_s", "stl_i":
		comp := map[string]string{"stl_t": "trend", "stl_s": "seasonal", "stl_i": "remainder"}[s.Op]
		fmt.Fprintf(&b, "%s_c <- stl(ts(%s$%s, frequency = frequency(%s$%s)), \"periodic\")\n",
			s.Out, s.In, s.ValCol, s.In, s.TimeCol)
		fmt.Fprintf(&b, "%s <- data.frame(%s = %s$%s, %s = %s_c$time.series[, %q])\n",
			s.Out, s.TimeCol, s.In, s.TimeCol, s.ValCol, s.Out, comp)
	case "movavg":
		w := int(s.Params[0])
		fmt.Fprintf(&b, "%s <- data.frame(%s = %s$%s, %s = stats::filter(%s$%s, rep(1/%d, %d), sides = 1))\n",
			s.Out, s.TimeCol, s.In, s.TimeCol, s.ValCol, s.In, s.ValCol, w, w)
	case "cumsum":
		fmt.Fprintf(&b, "%s <- data.frame(%s = %s$%s, %s = cumsum(%s$%s))\n",
			s.Out, s.TimeCol, s.In, s.TimeCol, s.ValCol, s.In, s.ValCol)
	case "lintrend":
		fmt.Fprintf(&b, "%s <- data.frame(%s = %s$%s, %s = fitted(lm(%s$%s ~ seq_along(%s$%s))))\n",
			s.Out, s.TimeCol, s.In, s.TimeCol, s.ValCol, s.In, s.ValCol, s.In, s.ValCol)
	default:
		fmt.Fprintf(&b, "%s <- %s(%s)  # user-defined series operator\n", s.Out, s.Op, s.In)
	}
	return b.String()
}

func rAggFun(agg string) string {
	switch agg {
	case "sum":
		return "sum"
	case "avg":
		return "mean"
	case "min":
		return "min"
	case "max":
		return "max"
	case "count":
		return "length"
	case "median":
		return "median"
	case "stddev":
		return "sd"
	case "prod":
		return "prod"
	default:
		return agg
	}
}

func printExpr(e frame.Expr, f string) string {
	switch e := e.(type) {
	case frame.Col:
		return fmt.Sprintf("%s$%s", f, e.Name)
	case frame.Const:
		return formatNum(e.V)
	case frame.PShift:
		if e.N >= 0 {
			return fmt.Sprintf("(%s + %d)", printExpr(e.X, f), e.N)
		}
		return fmt.Sprintf("(%s - %d)", printExpr(e.X, f), -e.N)
	case frame.DimApply:
		return fmt.Sprintf("%s(%s)", e.Fn, printExpr(e.X, f))
	case frame.Apply:
		args := make([]string, 0, len(e.Args))
		for _, a := range e.Args {
			args = append(args, printExpr(a, f))
		}
		switch e.Op {
		case "add":
			return fmt.Sprintf("(%s + %s)", args[0], args[1])
		case "sub":
			return fmt.Sprintf("(%s - %s)", args[0], args[1])
		case "mul":
			return fmt.Sprintf("(%s * %s)", args[0], args[1])
		case "div":
			return fmt.Sprintf("(%s / %s)", args[0], args[1])
		case "neg":
			return fmt.Sprintf("(-%s)", args[0])
		case "ln":
			return fmt.Sprintf("log(%s)", args[0])
		case "log":
			return fmt.Sprintf("log(%s, base = %s)", args[0], formatNum(e.Params[0]))
		case "pow":
			return fmt.Sprintf("(%s ^ %s)", args[0], formatNum(e.Params[0]))
		default:
			for _, p := range e.Params {
				args = append(args, formatNum(p))
			}
			return fmt.Sprintf("%s(%s)", e.Op, strings.Join(args, ", "))
		}
	default:
		return "NULL"
	}
}

func quoteList(xs []string) string {
	qs := make([]string, len(xs))
	for i, x := range xs {
		qs[i] = strconv.Quote(x)
	}
	return strings.Join(qs, ", ")
}

func rLiteral(v model.Value) string {
	switch v.Kind() {
	case model.KindString, model.KindPeriod:
		return strconv.Quote(v.String())
	default:
		return v.String()
	}
}

func formatNum(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
