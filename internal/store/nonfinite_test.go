package store

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"exlengine/internal/model"
)

func annualCube(t *testing.T, vals map[int]float64) *model.Cube {
	t.Helper()
	sch := model.Schema{
		Name:    "A",
		Dims:    []model.Dim{{Name: "t", Type: model.TYear}},
		Measure: "m",
	}
	c := model.NewCube(sch)
	for y, v := range vals {
		if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	return c
}

// TestWriteCSVRejectsNonFinite: exporting NaN or ±Inf measures must fail
// loudly rather than emitting text that silently round-trips.
func TestWriteCSVRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c := annualCube(t, map[int]float64{2000: 1, 2001: bad})
		var buf bytes.Buffer
		err := WriteCSV(&buf, c)
		if err == nil {
			t.Fatalf("WriteCSV with measure %v: want error, got nil (wrote %q)", bad, buf.String())
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("WriteCSV error %q does not mention non-finite", err)
		}
	}
}

// TestReadCSVRejectsNonFinite: "NaN" and "Inf" parse as floats, but they
// are not legal measures and must be rejected at import.
func TestReadCSVRejectsNonFinite(t *testing.T) {
	sch := model.Schema{
		Name:    "A",
		Dims:    []model.Dim{{Name: "t", Type: model.TYear}},
		Measure: "m",
	}
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		src := "t,m\n2000," + bad + "\n"
		_, err := ReadCSV(strings.NewReader(src), sch)
		if err == nil {
			t.Fatalf("ReadCSV with measure %q: want error, got nil", bad)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("ReadCSV error %q does not mention non-finite", err)
		}
	}
}

// TestCSVRoundTripFinite pins the happy path: finite measures (including
// negatives, zeros and values needing full float precision) survive an
// export/import cycle exactly.
func TestCSVRoundTripFinite(t *testing.T) {
	c := annualCube(t, map[int]float64{
		2000: 0,
		2001: -3.25,
		2002: 1.0 / 3.0,
		2003: 1e-300,
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, c.Schema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !c.Equal(back, 0) {
		t.Fatalf("round trip changed the cube:\n%s", strings.Join(c.Diff(back, 0, 10), "\n"))
	}
}

// TestFetchAsOfNotFound: reading before the first version (or a cube that
// was never stored) yields a clean typed error, not just a bare false.
func TestFetchAsOfNotFound(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

	if _, err := s.FetchAsOf("A", t0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("FetchAsOf on never-stored cube: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Fetch("A"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch on never-stored cube: err = %v, want ErrNotFound", err)
	}

	c := annualCube(t, map[int]float64{2000: 1})
	if err := s.Put(c, t0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_, err := s.FetchAsOf("A", t0.Add(-time.Hour))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("FetchAsOf before first version: err = %v, want ErrNotFound", err)
	}
	if !strings.Contains(err.Error(), "first version") {
		t.Fatalf("error %q should state the first version instant", err)
	}
	if got, err := s.FetchAsOf("A", t0); err != nil || got == nil {
		t.Fatalf("FetchAsOf at first version: %v", err)
	}
	// The boolean API still mirrors the error API.
	if _, ok := s.GetAsOf("A", t0.Add(-time.Hour)); ok {
		t.Fatal("GetAsOf before first version should report false")
	}
}
