package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"exlengine/internal/model"
)

func yearSchema(name string) model.Schema {
	return model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v")
}

func yearCube(t *testing.T, name string, vals map[int]float64) *model.Cube {
	t.Helper()
	c := model.NewCube(yearSchema(name))
	for y, v := range vals {
		if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestDeclareAndSchema(t *testing.T) {
	s := New()
	if err := s.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	// Identical re-declaration is fine.
	if err := s.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	// Changing dimensionality is not.
	other := model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v")
	if err := s.Declare(other); err == nil {
		t.Error("conflicting re-declaration must fail")
	}
	if _, ok := s.Schema("A"); !ok {
		t.Error("Schema lookup")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "A" {
		t.Errorf("Names = %v", names)
	}
}

func TestVersioning(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(24 * time.Hour)
	t2 := t0.Add(48 * time.Hour)

	v1 := yearCube(t, "A", map[int]float64{2019: 1})
	v2 := yearCube(t, "A", map[int]float64{2019: 2})
	if err := s.Put(v1, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(v2, t2); err != nil {
		t.Fatal(err)
	}

	cur, ok := s.Get("A")
	if !ok {
		t.Fatal("Get")
	}
	if got, _ := cur.Get([]model.Value{model.Per(model.NewAnnual(2019))}); got != 2 {
		t.Errorf("current = %v", got)
	}

	// As-of reads pick the version valid at the instant.
	old, ok := s.GetAsOf("A", t1)
	if !ok {
		t.Fatal("GetAsOf t1")
	}
	if got, _ := old.Get([]model.Value{model.Per(model.NewAnnual(2019))}); got != 1 {
		t.Errorf("as-of t1 = %v", got)
	}
	if _, ok := s.GetAsOf("A", t0.Add(-time.Hour)); ok {
		t.Error("as-of before first version must miss")
	}
	if vs := s.Versions("A"); len(vs) != 2 || !vs[0].Equal(t0) {
		t.Errorf("Versions = %v", vs)
	}

	// Writing an older version than the latest is rejected with the
	// typed stale-version error HTTP callers classify on.
	if err := s.Put(v1, t1); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("out-of-order Put = %v, want ErrStaleVersion", err)
	}
	// Dimensionality change via Put is rejected.
	bad := model.NewCube(model.NewSchema("A", []model.Dim{{Name: "x", Type: model.TInt}, {Name: "y", Type: model.TInt}}, "v"))
	if err := s.Put(bad, t2.Add(time.Hour)); err == nil {
		t.Error("Put with different dims must fail")
	}
}

func TestPutIsolation(t *testing.T) {
	s := New()
	c := yearCube(t, "A", map[int]float64{2019: 1})
	_ = s.Put(c, time.Unix(0, 0))
	// Mutating the original after Put must not affect the stored version.
	_ = c.Replace([]model.Value{model.Per(model.NewAnnual(2019))}, 99)
	got, _ := s.Get("A")
	if v, _ := got.Get([]model.Value{model.Per(model.NewAnnual(2019))}); v != 1 {
		t.Error("store must deep-copy on Put")
	}
	// Mutating the returned cube must not affect the store.
	_ = got.Replace([]model.Value{model.Per(model.NewAnnual(2019))}, 77)
	again, _ := s.Get("A")
	if v, _ := again.Get([]model.Value{model.Per(model.NewAnnual(2019))}); v != 1 {
		t.Error("store must deep-copy on Get")
	}
}

func TestSnapshot(t *testing.T) {
	s := New()
	_ = s.Put(yearCube(t, "A", map[int]float64{2019: 1}), time.Unix(0, 0))
	_ = s.Put(yearCube(t, "B", map[int]float64{2019: 2}), time.Unix(0, 0))
	snap := s.Snapshot()
	if len(snap) != 2 || snap["A"] == nil || snap["B"] == nil {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sch := model.NewSchema("PQR",
		[]model.Dim{{Name: "q", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "p")
	c := model.NewCube(sch)
	_ = c.Put([]model.Value{model.Per(model.NewQuarterly(2001, 1)), model.Str("north")}, 15)
	_ = c.Put([]model.Value{model.Per(model.NewQuarterly(2001, 2)), model.Str("south")}, 350.25)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "q,r,p\n") {
		t.Errorf("CSV header: %q", text)
	}
	if !strings.Contains(text, "2001-Q1,north,15") {
		t.Errorf("CSV body: %q", text)
	}

	back, err := ReadCSV(strings.NewReader(text), sch)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c, model.Eps) {
		t.Error("CSV round trip lost data")
	}
}

func TestCSVErrors(t *testing.T) {
	sch := yearSchema("A")
	cases := []string{
		"",                      // no header
		"x,v\n",                 // wrong header names
		"t\n",                   // wrong header arity
		"t,v\n2019,notanumber",  // bad measure
		"t,v\nnotayear,1",       // bad dimension
		"t,v\n2019,1\n2019,2\n", // egd violation
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), sch); err == nil {
			t.Errorf("ReadCSV(%q): want error", in)
		}
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	if _, ok := s.Get("NOPE"); ok {
		t.Error("missing cube must not be found")
	}
	if _, ok := s.GetAsOf("NOPE", time.Now()); ok {
		t.Error("missing cube as-of must not be found")
	}
	if vs := s.Versions("NOPE"); len(vs) != 0 {
		t.Error("missing cube has no versions")
	}
}
