package store

import (
	"strings"
	"testing"
	"time"

	"exlengine/internal/model"
)

func TestPutAllCommitsEveryCube(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	err := s.PutAll(map[string]*model.Cube{
		"A": yearCube(t, "A", map[int]float64{2000: 1}),
		"B": yearCube(t, "B", map[int]float64{2000: 2}),
	}, t0)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{"A": 1, "B": 2} {
		c, ok := s.Get(name)
		if !ok {
			t.Fatalf("cube %s missing", name)
		}
		v, _ := c.Get([]model.Value{model.Per(model.NewAnnual(2000))})
		if v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestPutAllAtomicOnNilCube(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	err := s.PutAll(map[string]*model.Cube{
		"A": yearCube(t, "A", map[int]float64{2000: 1}),
		"Z": nil,
	}, t0)
	if err == nil || !strings.Contains(err.Error(), "nil cube") {
		t.Fatalf("err = %v, want nil-cube rejection", err)
	}
	// Nothing — not even the valid cube — was written.
	if _, ok := s.Get("A"); ok {
		t.Error("rejected PutAll committed a cube")
	}
	if len(s.Names()) != 0 {
		t.Errorf("rejected PutAll registered schemas: %v", s.Names())
	}
}

func TestPutAllAtomicOnSchemaConflict(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := s.Declare(yearSchema("B")); err != nil {
		t.Fatal(err)
	}
	// B exists with (t: year); the batch redefines it with two dimensions.
	bad := model.NewCube(model.NewSchema("B",
		[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v"))
	err := s.PutAll(map[string]*model.Cube{
		"A": yearCube(t, "A", map[int]float64{2000: 1}),
		"B": bad,
	}, t0)
	if err == nil {
		t.Fatal("dimensionality change must be rejected")
	}
	if _, ok := s.Get("A"); ok {
		t.Error("rejected PutAll committed sibling cube A")
	}
}

func TestPutAllAtomicOnVersionOrder(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := s.Put(yearCube(t, "B", map[int]float64{2000: 9}), t0); err != nil {
		t.Fatal(err)
	}
	// The batch timestamp predates B's latest version.
	err := s.PutAll(map[string]*model.Cube{
		"A": yearCube(t, "A", map[int]float64{2000: 1}),
		"B": yearCube(t, "B", map[int]float64{2000: 10}),
	}, t0.Add(-time.Hour))
	if err == nil {
		t.Fatal("out-of-order version must be rejected")
	}
	if _, ok := s.Get("A"); ok {
		t.Error("rejected PutAll committed sibling cube A")
	}
	// B keeps its original value.
	b, _ := s.Get("B")
	if v, _ := b.Get([]model.Value{model.Per(model.NewAnnual(2000))}); v != 9 {
		t.Errorf("B overwritten: %v", v)
	}
}

func TestPutAllIsolatesCaller(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	c := yearCube(t, "A", map[int]float64{2000: 1})
	if err := s.PutAll(map[string]*model.Cube{"A": c}, t0); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's cube after the commit must not reach the store.
	if err := c.Replace([]model.Value{model.Per(model.NewAnnual(2000))}, 99); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("A")
	if v, _ := got.Get([]model.Value{model.Per(model.NewAnnual(2000))}); v != 1 {
		t.Errorf("stored cube aliases caller memory: %v", v)
	}
}
