package store

import (
	"errors"
	"testing"
	"time"

	"exlengine/internal/model"
)

// TestGetAsOfExactBoundary pins the inclusivity of version lookup: a
// version stamped asOf=t is visible at exactly t, an instant earlier is
// ErrNotFound, and between two versions the older one is served.
func TestGetAsOfExactBoundary(t *testing.T) {
	s := New()
	t1 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	t2 := t1.Add(24 * time.Hour)
	if err := s.Put(yearCube(t, "A", map[int]float64{2020: 1}), t1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(yearCube(t, "A", map[int]float64{2020: 2}), t2); err != nil {
		t.Fatal(err)
	}

	get := func(at time.Time) (float64, bool) {
		c, ok := s.GetAsOf("A", at)
		if !ok {
			return 0, false
		}
		v, ok := c.Get([]model.Value{model.Per(model.NewAnnual(2020))})
		if !ok {
			t.Fatalf("version at %v lost its tuple", at)
		}
		return v, true
	}

	if _, ok := get(t1.Add(-time.Nanosecond)); ok {
		t.Error("an instant before the first version must be not-found")
	}
	if v, ok := get(t1); !ok || v != 1 {
		t.Errorf("at exactly t1: got (%v,%v), want (1,true) — boundary is inclusive", v, ok)
	}
	if v, ok := get(t2.Add(-time.Nanosecond)); !ok || v != 1 {
		t.Errorf("just before t2: got (%v,%v), want the t1 version", v, ok)
	}
	if v, ok := get(t2); !ok || v != 2 {
		t.Errorf("at exactly t2: got (%v,%v), want (2,true)", v, ok)
	}
	if _, err := s.FetchAsOf("A", t1.Add(-time.Hour)); !errors.Is(err, ErrNotFound) {
		t.Errorf("FetchAsOf before first version: err = %v, want ErrNotFound", err)
	}
}

// TestDeltaSinceGeneration exercises Store.Delta against a real version
// history: exact tuple-level changes since an older generation, an empty
// delta at the current generation, and an empty-to-empty delta for a
// declared cube with no stored version.
func TestDeltaSinceGeneration(t *testing.T) {
	s := New()
	t1 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := s.Put(yearCube(t, "A", map[int]float64{2020: 1, 2021: 2}), t1); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if err := s.Put(yearCube(t, "A", map[int]float64{2021: 2, 2022: 9}), t1.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	d, err := s.Delta("A", g1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0].Measure != 9 {
		t.Errorf("Added = %v, want the single 2022->9 tuple", d.Added)
	}
	if len(d.Deleted) != 1 || d.Deleted[0].Measure != 1 {
		t.Errorf("Deleted = %v, want the single 2020->1 tuple", d.Deleted)
	}
	if len(d.Changed) != 0 {
		t.Errorf("Changed = %v, want none (2021 kept its value)", d.Changed)
	}

	if d, err = s.Delta("A", s.Generation()); err != nil || !d.Empty() {
		t.Errorf("delta at current generation: (%v, %v), want empty", d, err)
	}
	if _, err := s.Delta("NOPE", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("undeclared cube: err = %v, want ErrNotFound", err)
	}
	if err := s.Declare(yearSchema("B")); err != nil {
		t.Fatal(err)
	}
	if d, err = s.Delta("B", 0); err != nil || !d.Empty() {
		t.Errorf("declared-but-never-stored cube: (%v, %v), want empty delta", d, err)
	}
}

// TestDeltaOverwriteUnavailable: an equal-asOf overwrite destroys the
// version a pre-overwrite snapshot observed, so Delta from such a
// generation must refuse with ErrDeltaUnavailable rather than hand back
// a diff against the wrong base. Generations at or after the overwrite
// keep working.
func TestDeltaOverwriteUnavailable(t *testing.T) {
	s := New()
	t1 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := s.Put(yearCube(t, "A", map[int]float64{2020: 1}), t1); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	// Same asOf: last write wins and replaces the g1 version in place.
	if err := s.Put(yearCube(t, "A", map[int]float64{2020: 5}), t1); err != nil {
		t.Fatal(err)
	}
	g2 := s.Generation()
	if err := s.Put(yearCube(t, "A", map[int]float64{2020: 5, 2021: 6}), t1.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Delta("A", g1); !errors.Is(err, ErrDeltaUnavailable) {
		t.Errorf("delta across an overwrite: err = %v, want ErrDeltaUnavailable", err)
	}
	d, err := s.Delta("A", g2)
	if err != nil {
		t.Fatalf("delta from the post-overwrite generation must work: %v", err)
	}
	if len(d.Added) != 1 || len(d.Changed) != 0 || len(d.Deleted) != 0 {
		t.Errorf("delta since g2 = +%d ~%d -%d, want exactly one addition", len(d.Added), len(d.Changed), len(d.Deleted))
	}
}
