package store

import (
	"errors"
	"testing"
	"time"

	"exlengine/internal/model"
)

// TestGetSharesFrozenInstance pins the zero-copy read contract: Get
// returns the stored frozen instance by reference, repeated reads share
// it, and in-place mutation is rejected with ErrFrozen.
func TestGetSharesFrozenInstance(t *testing.T) {
	s := New()
	c := yearCube(t, "A", map[int]float64{2000: 1, 2001: 2})
	if err := s.Put(c, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	g1, ok := s.Get("A")
	if !ok {
		t.Fatal("cube missing")
	}
	g2, _ := s.Get("A")
	if g1 != g2 {
		t.Errorf("Get cloned: two reads returned distinct instances")
	}
	if !g1.Frozen() {
		t.Errorf("stored cube is not frozen")
	}
	if g1 == c {
		t.Errorf("Put adopted the caller's mutable cube without cloning")
	}
	err := g1.Put([]model.Value{model.Per(model.NewAnnual(2002))}, 3)
	if !errors.Is(err, model.ErrFrozen) {
		t.Errorf("mutating a stored cube: err = %v, want ErrFrozen", err)
	}
	if err := g1.Replace([]model.Value{model.Per(model.NewAnnual(2000))}, 9); !errors.Is(err, model.ErrFrozen) {
		t.Errorf("Replace on a stored cube: err = %v, want ErrFrozen", err)
	}
	// The caller's original stays mutable, and a Clone of the frozen
	// instance thaws.
	if err := c.Put([]model.Value{model.Per(model.NewAnnual(2002))}, 3); err != nil {
		t.Errorf("caller's cube became immutable: %v", err)
	}
	cl := g1.Clone()
	if cl.Frozen() {
		t.Errorf("Clone of a frozen cube is frozen")
	}
	if err := cl.Put([]model.Value{model.Per(model.NewAnnual(2003))}, 4); err != nil {
		t.Errorf("clone not mutable: %v", err)
	}
}

// TestPutAdoptsFrozenCube: storing an already-frozen cube skips the
// defensive clone — the instance is immutable, so sharing it is safe.
func TestPutAdoptsFrozenCube(t *testing.T) {
	s := New()
	c := yearCube(t, "A", map[int]float64{2000: 1}).Freeze()
	if err := s.Put(c, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	g, _ := s.Get("A")
	if g != c {
		t.Errorf("Put cloned a frozen cube")
	}
}

// TestSnapshotZeroCopyAndGeneration: snapshots share the stored frozen
// instances and carry the write generation.
func TestSnapshotZeroCopyAndGeneration(t *testing.T) {
	s := New()
	if g := s.Generation(); g != 0 {
		t.Fatalf("fresh store generation = %d", g)
	}
	if err := s.Put(yearCube(t, "A", map[int]float64{2000: 1}), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	snap1, gen1 := s.SnapshotVersioned()
	snap2, gen2 := s.SnapshotVersioned()
	if gen1 != 1 || gen2 != 1 {
		t.Errorf("generations = %d, %d, want 1, 1", gen1, gen2)
	}
	if snap1["A"] != snap2["A"] {
		t.Errorf("snapshots cloned the cube")
	}
	g, _ := s.Get("A")
	if snap1["A"] != g {
		t.Errorf("snapshot and Get disagree on the shared instance")
	}
	if err := s.PutAll(map[string]*model.Cube{
		"B": yearCube(t, "B", map[int]float64{2000: 2}),
		"C": yearCube(t, "C", map[int]float64{2000: 3}),
	}, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 2 {
		t.Errorf("generation after PutAll = %d, want 2 (one bump per commit)", g)
	}
	// The old snapshot is unaffected by the later write.
	if len(snap1) != 1 {
		t.Errorf("snapshot gained cubes retroactively: %d", len(snap1))
	}
}

// TestPutSameInstantLastWriteWins pins the equal-timestamp rule: a second
// version at exactly the latest asOf replaces it instead of duplicating
// the entry, so Versions stays strictly increasing and GetAsOf is
// unambiguous. Before the fix both versions were appended.
func TestPutSameInstantLastWriteWins(t *testing.T) {
	s := New()
	t0 := time.Unix(100, 0)
	if err := s.Put(yearCube(t, "A", map[int]float64{2000: 1}), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(yearCube(t, "A", map[int]float64{2000: 2}), t0); err != nil {
		t.Fatal(err)
	}
	vs := s.Versions("A")
	if len(vs) != 1 {
		t.Fatalf("Versions = %v, want exactly one entry at %v", vs, t0)
	}
	g, _ := s.GetAsOf("A", t0)
	if v, _ := g.Get([]model.Value{model.Per(model.NewAnnual(2000))}); v != 2 {
		t.Errorf("GetAsOf at the shared instant = %v, want the last write (2)", v)
	}
	// A later version still appends.
	if err := s.Put(yearCube(t, "A", map[int]float64{2000: 3}), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if vs := s.Versions("A"); len(vs) != 2 {
		t.Fatalf("Versions after later write = %v, want two entries", vs)
	}
	// PutAll follows the same rule.
	if err := s.PutAll(map[string]*model.Cube{"A": yearCube(t, "A", map[int]float64{2000: 4})}, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if vs := s.Versions("A"); len(vs) != 2 {
		t.Fatalf("Versions after equal-instant PutAll = %v, want two entries", vs)
	}
	g, _ = s.Get("A")
	if v, _ := g.Get([]model.Value{model.Per(model.NewAnnual(2000))}); v != 4 {
		t.Errorf("current value = %v, want 4 (PutAll last write wins)", v)
	}
}
