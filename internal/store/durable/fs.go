// Package durable implements a crash-safe persistent backend for the
// cube store: an append-only write-ahead log of commit records
// (length-prefixed, CRC32C-checksummed, fsync'd per commit with an
// optional group-commit window) plus periodic full-state segment
// snapshots with compaction, wrapped around the in-memory store.Store so
// zero-copy frozen-cube reads and GetAsOf/generation MVCC semantics are
// preserved exactly.
//
// Recovery (Open) loads the newest verifiable snapshot, replays the WAL
// tail, truncates at the first torn or corrupt record, and resumes the
// generation counter — the reopened store is always a prefix of the
// committed generations, never a torn cube. In the spirit of
// Exchange-Repairs, a corrupt newest snapshot degrades to the previous
// consistent one rather than failing the open.
//
// All file I/O goes through the FS interface so tests (and the
// fault-injection harness in internal/faults) can interpose short
// writes, fsync failures and crash-at-offset truncation.
package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the WAL and snapshot writers need.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage. A commit is
	// durable only after Sync returns nil.
	Sync() error
}

// FS abstracts the filesystem operations of the durable store. OSFS is
// the real implementation; internal/faults wraps any FS with injected
// disk faults.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the file to size bytes (recovery chops torn tails).
	Truncate(name string, size int64) error
	// MkdirAll creates the directory and any parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs a directory, making renames and creates durable.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
