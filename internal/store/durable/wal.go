package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"exlengine/internal/obs"
)

// WAL file layout:
//
//	header:  8-byte magic "EXLWAL01" + 8-byte little-endian base generation
//	records: repeated [4-byte LE payload length][4-byte LE CRC32C(payload)][payload]
//
// The base generation is the store generation the log starts after: the
// first commit record in the file is generation base+1. A record is
// committed once its bytes are fsync'd; recovery accepts the longest
// prefix of well-formed records and truncates the rest (a torn tail is
// the expected shape of a crash, not an error).
var walMagic = [8]byte{'E', 'X', 'L', 'W', 'A', 'L', '0', '1'}

const (
	walHeaderSize   = 16
	recordHeaderLen = 8
	// maxRecordSize bounds a record's claimed length so a corrupt length
	// field cannot drive a multi-gigabyte allocation during recovery.
	maxRecordSize = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a record rejected during replay; recovery truncates the
// log at the record's start offset.
var errTorn = errors.New("durable: torn or corrupt WAL record")

// walWriter appends framed records to an open WAL file and makes them
// durable with per-commit fsync, optionally batched: with a group-commit
// window, the first committer of a batch waits window for followers to
// append, then one fsync covers them all.
type walWriter struct {
	f       File
	window  time.Duration
	metrics *obs.Registry
	// inflight counts commits between append and fsync completion;
	// compaction drains it before closing a retired WAL.
	inflight sync.WaitGroup

	mu  sync.Mutex // guards f writes and off
	off int64      // bytes appended (including header)

	sync struct {
		sync.Mutex
		cond    *sync.Cond
		syncing bool  // a leader is currently in fsync
		synced  int64 // bytes made durable so far
		err     error // sticky: a failed fsync poisons the writer
	}

	fsyncs  int64 // fsync calls issued (durability metric)
	written int64 // record bytes appended (durability metric)
}

// newWALWriter creates the WAL file and writes its header. The header is
// not fsync'd on its own: the first commit's fsync covers it.
func newWALWriter(fs FS, path string, baseGen uint64, window time.Duration, metrics *obs.Registry) (*walWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], baseGen)
	if err := writeFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	w := &walWriter{f: f, window: window, metrics: metrics, off: walHeaderSize}
	w.sync.cond = sync.NewCond(&w.sync.Mutex)
	return w, nil
}

// writeFull writes all of b, turning a silent short write into an error:
// a File that reports n < len(b) with a nil error (possible under fault
// injection) must not be treated as success.
func writeFull(f File, b []byte) error {
	n, err := f.Write(b)
	if err == nil && n < len(b) {
		err = fmt.Errorf("%w (%d of %d bytes)", io.ErrShortWrite, n, len(b))
	}
	return err
}

// append frames and writes one record, returning the end offset the
// caller must pass to commit. It does not fsync.
func (w *walWriter) append(payload []byte) (int64, error) {
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordSize)
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := writeFull(w.f, hdr[:]); err != nil {
		return 0, err
	}
	if err := writeFull(w.f, payload); err != nil {
		return 0, err
	}
	w.off += int64(recordHeaderLen + len(payload))
	w.written += int64(recordHeaderLen + len(payload))
	return w.off, nil
}

// commit blocks until every byte up to end is durable. Concurrent
// committers share fsyncs: one leader (optionally waiting the
// group-commit window so followers can append) syncs on behalf of
// everyone whose end offset its fsync covers. A failed fsync is sticky —
// after it, the on-disk state of the tail is unknown, so every later
// commit fails until the store is reopened and recovery re-establishes a
// consistent prefix.
func (w *walWriter) commit(end int64) error {
	s := &w.sync
	s.Lock()
	for {
		if s.err != nil {
			err := s.err
			s.Unlock()
			return err
		}
		if s.synced >= end {
			s.Unlock()
			return nil
		}
		if !s.syncing {
			break
		}
		s.cond.Wait()
	}
	s.syncing = true
	s.Unlock()

	if w.window > 0 {
		time.Sleep(w.window)
	}
	w.mu.Lock()
	target := w.off
	w.mu.Unlock()
	err := w.f.Sync()
	w.metrics.Counter(obs.MetricStoreFsyncs).Inc()

	s.Lock()
	w.fsyncs++
	s.syncing = false
	if err != nil {
		s.err = fmt.Errorf("durable: wal fsync: %w", err)
		err = s.err
	} else {
		s.synced = target
	}
	s.cond.Broadcast()
	s.Unlock()
	return err
}

// stats returns the bytes appended and fsyncs issued so far.
func (w *walWriter) stats() (written, fsyncs int64) {
	w.mu.Lock()
	written = w.written
	w.mu.Unlock()
	w.sync.Lock()
	fsyncs = w.fsyncs
	w.sync.Unlock()
	return written, fsyncs
}

// size returns the current file size in bytes.
func (w *walWriter) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// close fsyncs and closes the file.
func (w *walWriter) close() error {
	err := w.commit(w.size())
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// walScan is the result of reading one WAL file during recovery.
type walScan struct {
	baseGen   uint64
	records   [][]byte // well-formed record payloads, in append order
	offsets   []int64  // start offset of each record in the file
	validSize int64    // bytes up to the end of the last valid record
	torn      bool     // a torn/corrupt record (or tail) was dropped
}

// readWAL reads a WAL file, stopping at the first torn or corrupt
// record. It returns the valid prefix; the caller truncates the file to
// validSize if torn bytes follow.
func readWAL(fs FS, path string) (*walScan, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(raw) < walHeaderSize || [8]byte(raw[:8]) != walMagic {
		return nil, fmt.Errorf("durable: %s is not a WAL file", path)
	}
	scan := &walScan{
		baseGen:   binary.LittleEndian.Uint64(raw[8:16]),
		validSize: walHeaderSize,
	}
	off := int64(walHeaderSize)
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return scan, nil
		}
		if len(rest) < recordHeaderLen {
			scan.torn = true
			return scan, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecordSize || int64(len(rest))-recordHeaderLen < n {
			scan.torn = true
			return scan, nil
		}
		payload := rest[recordHeaderLen : recordHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			scan.torn = true
			return scan, nil
		}
		scan.records = append(scan.records, payload)
		scan.offsets = append(scan.offsets, off)
		off += recordHeaderLen + n
		scan.validSize = off
	}
}
