package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/store"
)

// ErrFailed is wrapped by every write rejected after a disk fault: once
// an append or fsync fails, the on-disk tail is in an unknown state, so
// the store fails writes fast (reads keep serving the in-memory state)
// until it is reopened and recovery re-establishes a consistent prefix.
var ErrFailed = errors.New("durable: store disabled after disk fault; reopen to recover")

// diskErr classifies a disk fault as a typed exlerr error: Fatal,
// because retrying the same write against a failing device cannot help,
// but errors.Is still reaches the underlying cause.
func diskErr(op string, err error) error {
	return exlerr.New(exlerr.Fatal, fmt.Errorf("durable: %s: %w", op, err))
}

// Options configure a durable store.
type Options struct {
	// FS is the filesystem; nil means the real one (OSFS).
	FS FS
	// GroupCommitWindow batches fsyncs: a committer that becomes the
	// sync leader waits this long for concurrent commits to append
	// before issuing one fsync for the whole batch. Zero syncs every
	// commit individually (still one fsync may cover several commits
	// that raced in). Durability is unaffected — a commit never returns
	// before its record is fsync'd — only latency and fsync count are.
	GroupCommitWindow time.Duration
	// CompactAfterBytes triggers a segment snapshot + WAL rotation once
	// the active WAL exceeds this many bytes. Zero means the default
	// (4 MiB); negative disables automatic compaction.
	CompactAfterBytes int64
	// Metrics receives durability metrics (wal bytes, fsyncs,
	// recovery_ms, truncated records). Nil records nothing.
	Metrics *obs.Registry
}

// Option mutates Options.
type Option func(*Options)

// WithFS substitutes the filesystem (fault injection, tests).
func WithFS(fs FS) Option { return func(o *Options) { o.FS = fs } }

// WithGroupCommit sets the group-commit window.
func WithGroupCommit(window time.Duration) Option {
	return func(o *Options) { o.GroupCommitWindow = window }
}

// WithCompactAfter sets the WAL size that triggers compaction
// (negative: never compact automatically).
func WithCompactAfter(bytes int64) Option {
	return func(o *Options) { o.CompactAfterBytes = bytes }
}

// WithMetrics attaches a metrics registry.
func WithMetrics(m *obs.Registry) Option { return func(o *Options) { o.Metrics = m } }

// RecoveryStats describes what Open found and repaired.
type RecoveryStats struct {
	// SnapshotGen is the generation of the segment snapshot recovery
	// started from (0: no snapshot, cold start).
	SnapshotGen uint64
	// CorruptSegments counts newer snapshots that failed verification
	// and were skipped in favour of an older consistent one.
	CorruptSegments int
	// ReplayedRecords is the number of WAL records applied on top of
	// the snapshot.
	ReplayedRecords int
	// TruncatedRecords counts torn or corrupt WAL tails that were cut
	// off (at most one per WAL file).
	TruncatedRecords int
	// Generation is the store generation after recovery.
	Generation uint64
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Store is a crash-safe cube store: the in-memory store.Store for reads
// (zero-copy frozen cubes, GetAsOf, generation MVCC — semantics are
// identical), with every mutation written ahead to a checksummed WAL and
// periodically folded into segment snapshots. It implements the same
// API surface the engine consumes (engine.CubeStore).
type Store struct {
	dir  string
	fs   FS
	opts Options

	mem *store.Store

	mu     sync.Mutex // serializes mutations and compaction
	wal    *walWriter
	failed error // sticky disk fault; writes fail fast

	// genBase/memBase map the wrapped store's volatile generation to the
	// durable one: durableGen = genBase + (mem.Generation() - memBase).
	// Both are fixed at Open, so reads need no extra lock.
	genBase uint64
	memBase uint64

	recovery RecoveryStats
}

// Open recovers (or initializes) a durable store in dir: it loads the
// newest verifiable segment snapshot, replays the WAL chain on top —
// truncating at the first torn or corrupt record — then writes a fresh
// snapshot of the recovered state and rotates a new WAL, pruning
// everything older. After Open returns, dir contains exactly one
// snapshot and one active WAL, and the store's contents are a prefix of
// the generations committed before the last shutdown or crash.
func Open(dir string, options ...Option) (*Store, error) {
	opts := Options{}
	for _, o := range options {
		o(&opts)
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.CompactAfterBytes == 0 {
		opts.CompactAfterBytes = 4 << 20
	}
	start := time.Now()
	d := &Store{dir: dir, fs: opts.FS, opts: opts, mem: store.New()}
	if err := d.fs.MkdirAll(dir); err != nil {
		return nil, diskErr("creating store directory", err)
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	d.recovery.Elapsed = time.Since(start)
	d.recovery.Generation = d.Generation()
	m := opts.Metrics
	m.Gauge(obs.MetricStoreRecoveryMS).Set(d.recovery.Elapsed.Milliseconds())
	m.Counter(obs.MetricStoreTruncatedRecords).Add(int64(d.recovery.TruncatedRecords))
	return d, nil
}

// Recovery returns what Open found and repaired.
func (d *Store) Recovery() RecoveryStats { return d.recovery }

// Dir returns the store directory.
func (d *Store) Dir() string { return d.dir }

func segmentName(gen uint64) string { return fmt.Sprintf("seg-%016x.snap", gen) }
func walName(gen uint64) string     { return fmt.Sprintf("wal-%016x.log", gen) }

// parseGen extracts the generation from a "prefix-<hex>.suffix" name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// recover rebuilds the in-memory state from dir; see Open.
func (d *Store) recover() error {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return diskErr("listing store directory", err)
	}
	var segGens, walGens []uint64
	for _, name := range names {
		if g, ok := parseGen(name, "seg-", ".snap"); ok {
			segGens = append(segGens, g)
		} else if g, ok := parseGen(name, "wal-", ".log"); ok {
			walGens = append(walGens, g)
		}
		// Anything else (leftover .tmp files from an interrupted
		// snapshot) is pruned below once recovery succeeds.
	}

	// Newest verifiable snapshot wins; corrupt ones degrade to older.
	var snap *snapshotState
	sortUint64(segGens)
	for i := len(segGens) - 1; i >= 0; i-- {
		st, err := loadSnapshot(d.fs, filepath.Join(d.dir, segmentName(segGens[i])))
		if err != nil {
			d.recovery.CorruptSegments++
			continue
		}
		snap = st
		break
	}
	gen := uint64(0)
	if snap != nil {
		gen = snap.gen
		d.recovery.SnapshotGen = snap.gen
		for _, sch := range snap.schemas {
			if err := d.mem.Declare(sch); err != nil {
				return fmt.Errorf("durable: restoring schema catalog: %w", err)
			}
		}
		for name, vs := range snap.history {
			for _, v := range vs {
				if err := d.mem.Put(v.Cube, v.AsOf); err != nil {
					return fmt.Errorf("durable: restoring cube %s: %w", name, err)
				}
			}
		}
	}

	// Replay the WAL chain: each file whose base generation is at or
	// behind the current one contributes its commits past the overlap.
	// A gap (base generation ahead of the recovered one) orphans the
	// rest of the chain — those records are beyond the last consistent
	// prefix and are dropped.
	sortUint64(walGens)
	for _, wg := range walGens {
		if wg > gen {
			break
		}
		path := filepath.Join(d.dir, walName(wg))
		scan, err := readWAL(d.fs, path)
		if err != nil {
			// An unreadable or truncated-below-header WAL contributes
			// nothing; recovery continues with what it has.
			d.recovery.TruncatedRecords++
			continue
		}
		torn := scan.torn
		skip := gen - scan.baseGen
		for i, payload := range scan.records {
			rec, err := decodeRecord(payload)
			if err != nil {
				// CRC-valid but undecodable: treat exactly like a torn
				// record — truncate here and stop.
				scan.validSize = scan.offsets[i]
				torn = true
				break
			}
			if rec.op == opDeclare {
				// Declares are idempotent and do not bump the
				// generation; apply them even in the overlap region.
				if err := d.mem.Declare(rec.schema); err != nil {
					scan.validSize = scan.offsets[i]
					torn = true
					break
				}
				continue
			}
			if skip > 0 {
				skip--
				continue
			}
			if err := d.applyCommit(rec); err != nil {
				scan.validSize = scan.offsets[i]
				torn = true
				break
			}
			gen++
			d.recovery.ReplayedRecords++
		}
		if torn {
			d.recovery.TruncatedRecords++
			// Best-effort: chop the torn tail so the file on disk is
			// exactly the prefix that was recovered.
			_ = d.fs.Truncate(path, scan.validSize)
			break
		}
	}

	// Anchor the generation mapping before any new writes.
	d.memBase = d.mem.Generation()
	d.genBase = gen

	// Fold the recovered state into a fresh snapshot + empty WAL and
	// prune everything older, so the directory is back to a single
	// consistent pair whatever mix of files the crash left behind.
	if _, err := writeSnapshot(d.fs, d.dir, d.mem, gen); err != nil {
		return diskErr("writing recovery snapshot", err)
	}
	d.opts.Metrics.Counter(obs.MetricStoreSegments).Inc()
	wal, err := newWALWriter(d.fs, filepath.Join(d.dir, walName(gen)), gen, d.opts.GroupCommitWindow, d.opts.Metrics)
	if err != nil {
		return diskErr("creating WAL", err)
	}
	d.wal = wal
	d.prune(gen)
	return nil
}

// applyCommit replays one gen-bumping record into the wrapped store.
func (d *Store) applyCommit(rec *record) error {
	switch rec.op {
	case opPut:
		for _, c := range rec.cubes {
			return d.mem.Put(c.Freeze(), rec.asOf)
		}
		return fmt.Errorf("durable: put record without a cube")
	case opPutAll:
		for _, c := range rec.cubes {
			c.Freeze()
		}
		return d.mem.PutAll(rec.cubes, rec.asOf)
	default:
		return fmt.Errorf("durable: unknown commit opcode %d", rec.op)
	}
}

// prune removes every snapshot, WAL and temp file except the pair for
// keep. Failures are ignored: stale files are garbage, not state, and
// the next recovery skips them.
func (d *Store) prune(keep uint64) {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if g, ok := parseGen(name, "seg-", ".snap"); ok && g == keep {
			continue
		} else if g, ok := parseGen(name, "wal-", ".log"); ok && g == keep {
			continue
		}
		_ = d.fs.Remove(filepath.Join(d.dir, name))
	}
}

// --- write path ---------------------------------------------------------

// commit validates the mutation, appends its record to the WAL and
// applies it to the wrapped store — all under d.mu, so WAL order and
// memory order coincide and a record never reaches the log unless the
// apply is guaranteed to succeed. After releasing d.mu it blocks until
// the record is fsync'd: a commit is only acknowledged once it is
// durable. A disk fault poisons the store; a failed validation is an
// ordinary rejected write, exactly as on the in-memory store.
func (d *Store) commit(validate func() error, payload func() []byte, apply func() error) error {
	d.mu.Lock()
	if d.failed != nil {
		d.mu.Unlock()
		return diskErr("write rejected", d.failed)
	}
	if err := validate(); err != nil {
		d.mu.Unlock()
		return err
	}
	body := payload()
	end, err := d.wal.append(body)
	if err != nil {
		d.failed = fmt.Errorf("%w (cause: %v)", ErrFailed, err)
		d.mu.Unlock()
		return diskErr("wal append", err)
	}
	if err := apply(); err != nil {
		// Validation just passed under the same lock hold, so this is a
		// store invariant violation; poison — the WAL now holds a
		// record memory refused.
		d.failed = fmt.Errorf("%w (cause: %v)", ErrFailed, err)
		d.mu.Unlock()
		return err
	}
	wal := d.wal
	wal.inflight.Add(1)
	needCompact := d.opts.CompactAfterBytes > 0 && wal.size() >= d.opts.CompactAfterBytes
	d.mu.Unlock()

	err = wal.commit(end)
	wal.inflight.Done()
	if err != nil {
		d.mu.Lock()
		if d.failed == nil {
			d.failed = fmt.Errorf("%w (cause: %v)", ErrFailed, err)
		}
		d.mu.Unlock()
		return diskErr("wal fsync", err)
	}
	m := d.opts.Metrics
	m.Counter(obs.MetricStoreWALBytes).Add(int64(len(body)) + recordHeaderLen)
	m.Counter(obs.MetricStoreWALRecords).Inc()
	if needCompact {
		// Best-effort: the commit itself is durable, and a failed
		// compaction poisons the store on its own.
		_ = d.Compact()
	}
	return nil
}

// Declare registers a cube schema, durably. Re-declaring an existing
// schema with identical dimensions is a no-op that writes nothing.
func (d *Store) Declare(sch model.Schema) error {
	if old, ok := d.mem.Schema(sch.Name); ok && old.SameDims(sch) {
		return nil
	}
	return d.commit(
		func() error {
			if old, ok := d.mem.Schema(sch.Name); ok && !old.SameDims(sch) {
				return fmt.Errorf("store: cube %s already declared with different dimensions (%s vs %s)", sch.Name, old, sch)
			}
			return nil
		},
		func() []byte { return encodeDeclare(sch) },
		func() error { return d.mem.Declare(sch) },
	)
}

// Put stores a new version of the cube, valid from asOf. It returns
// only after the commit record is fsync'd to the WAL.
func (d *Store) Put(c *model.Cube, asOf time.Time) error {
	return d.commit(
		func() error { return d.mem.CheckPut(c, asOf) },
		func() []byte { return encodePut(c, asOf) },
		func() error { return d.mem.Put(c, asOf) },
	)
}

// PutAll stores a new version of every cube atomically: one WAL record
// carries the whole batch, so recovery replays all of it or none —
// all-or-nothing across both the WAL commit and the in-memory apply.
func (d *Store) PutAll(cubes map[string]*model.Cube, asOf time.Time) error {
	if len(cubes) == 0 {
		return nil
	}
	return d.commit(
		func() error { return d.mem.CheckPutAll(cubes, asOf) },
		func() []byte { return encodePutAll(cubes, asOf) },
		func() error { return d.mem.PutAll(cubes, asOf) },
	)
}

// PutAllGen is PutAll returning the durable commit generation the batch
// was stamped with, read atomically with the apply (see
// store.Store.PutAllGen).
func (d *Store) PutAllGen(cubes map[string]*model.Cube, asOf time.Time) (uint64, error) {
	if len(cubes) == 0 {
		return d.Generation(), nil
	}
	var memGen uint64
	err := d.commit(
		func() error { return d.mem.CheckPutAll(cubes, asOf) },
		func() []byte { return encodePutAll(cubes, asOf) },
		func() error {
			var err error
			memGen, err = d.mem.PutAllGen(cubes, asOf)
			return err
		},
	)
	if err != nil {
		return d.Generation(), err
	}
	return memGen + (d.genBase - d.memBase), nil
}

// Compact writes a segment snapshot of the current state, rotates to a
// fresh WAL and prunes superseded files. Readers are unaffected; writers
// wait.
func (d *Store) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return diskErr("compaction rejected", d.failed)
	}
	gen := d.genBase + (d.mem.Generation() - d.memBase)
	if _, err := writeSnapshot(d.fs, d.dir, d.mem, gen); err != nil {
		d.failed = fmt.Errorf("%w (cause: %v)", ErrFailed, err)
		return diskErr("writing snapshot", err)
	}
	d.opts.Metrics.Counter(obs.MetricStoreSegments).Inc()
	wal, err := newWALWriter(d.fs, filepath.Join(d.dir, walName(gen)), gen, d.opts.GroupCommitWindow, d.opts.Metrics)
	if err != nil {
		d.failed = fmt.Errorf("%w (cause: %v)", ErrFailed, err)
		return diskErr("rotating WAL", err)
	}
	old := d.wal
	d.wal = wal
	// Drain in-flight commits on the retired WAL before closing it; the
	// snapshot already covers everything it holds.
	old.inflight.Wait()
	_ = old.close()
	d.prune(gen)
	return nil
}

// Close fsyncs and closes the active WAL. The store must not be used
// afterwards. Writers racing Close fail cleanly: holding d.mu means no
// commit can append once Close begins, and commits already appended are
// drained — their group-commit fsync completes — before the file is
// closed, so every acked commit is durable and no committer ever fsyncs
// a closed descriptor.
func (d *Store) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return nil
	}
	d.wal.inflight.Wait()
	err := d.wal.close()
	d.wal = nil
	if d.failed == nil {
		d.failed = ErrFailed
	}
	if err != nil {
		return diskErr("closing WAL", err)
	}
	return nil
}

// --- read path: delegate to the wrapped in-memory store -----------------

// Schema returns the declared schema of a cube.
func (d *Store) Schema(name string) (model.Schema, bool) { return d.mem.Schema(name) }

// Names returns the declared cube names, sorted.
func (d *Store) Names() []string { return d.mem.Names() }

// Get returns the current version of the cube (frozen, shared).
func (d *Store) Get(name string) (*model.Cube, bool) { return d.mem.Get(name) }

// Fetch is Get with a descriptive error.
func (d *Store) Fetch(name string) (*model.Cube, error) { return d.mem.Fetch(name) }

// GetAsOf returns the version valid at instant t (frozen, shared).
func (d *Store) GetAsOf(name string, t time.Time) (*model.Cube, bool) { return d.mem.GetAsOf(name, t) }

// FetchAsOf is GetAsOf with a descriptive error.
func (d *Store) FetchAsOf(name string, t time.Time) (*model.Cube, error) {
	return d.mem.FetchAsOf(name, t)
}

// Versions returns the validity instants of the cube's versions.
func (d *Store) Versions(name string) []time.Time { return d.mem.Versions(name) }

// Snapshot returns the current version of every cube, zero-copy.
func (d *Store) Snapshot() map[string]*model.Cube { return d.mem.Snapshot() }

// SnapshotVersioned is Snapshot plus the durable generation.
func (d *Store) SnapshotVersioned() (map[string]*model.Cube, uint64) {
	snap, memGen := d.mem.SnapshotVersioned()
	return snap, d.genBase + (memGen - d.memBase)
}

// Generation returns the durable write generation: it continues across
// restarts from wherever recovery ended.
func (d *Store) Generation() uint64 {
	return d.genBase + (d.mem.Generation() - d.memBase)
}

// CubeGenerations returns the per-cube latest-version generations on the
// durable generation axis. Versions recovered from disk carry replay
// generations ≤ the generation at Open, preserving the invariant that an
// unchanged generation implies an unchanged cube.
func (d *Store) CubeGenerations() map[string]uint64 {
	gens := d.mem.CubeGenerations()
	for name, g := range gens {
		gens[name] = g + (d.genBase - d.memBase)
	}
	return gens
}

// SnapshotWithGenerations is SnapshotVersioned plus the per-cube
// generation map, on the durable generation axis.
func (d *Store) SnapshotWithGenerations() (map[string]*model.Cube, uint64, map[string]uint64) {
	snap, memGen, gens := d.mem.SnapshotWithGenerations()
	for name, g := range gens {
		gens[name] = g + (d.genBase - d.memBase)
	}
	return snap, memGen + (d.genBase - d.memBase), gens
}

// Delta returns the tuple-level changes to the cube since durable
// generation sinceGen (see store.Store.Delta). Generations taken before
// this process opened the store cannot be mapped onto the recovered
// in-memory history — recovery renumbers commits during replay — so they
// conservatively yield store.ErrDeltaUnavailable; in practice memoized
// generation vectors die with the process anyway, so the first run after
// a restart is always full.
func (d *Store) Delta(name string, sinceGen uint64) (*model.CubeDelta, error) {
	if sinceGen < d.genBase {
		return nil, fmt.Errorf("%w (cube %s: generation %d predates recovery at %d)",
			store.ErrDeltaUnavailable, name, sinceGen, d.genBase)
	}
	return d.mem.Delta(name, sinceGen-d.genBase+d.memBase)
}

// WALStats returns bytes appended to and fsyncs issued on the active
// WAL since it was opened or rotated.
func (d *Store) WALStats() (bytes, fsyncs int64) {
	d.mu.Lock()
	wal := d.wal
	d.mu.Unlock()
	if wal == nil {
		return 0, 0
	}
	return wal.stats()
}

func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
