package durable

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"exlengine/internal/model"
)

// WAL record opcodes. A record is one committed store mutation.
const (
	opPut     byte = 1 // one cube version
	opPutAll  byte = 2 // an atomic batch of cube versions
	opDeclare byte = 3 // a schema declaration (does not bump the generation)
)

// record is the decoded form of one WAL payload.
type record struct {
	op     byte
	asOf   time.Time
	cubes  map[string]*model.Cube // opPut / opPutAll
	schema model.Schema           // opDeclare
}

// bumpsGeneration reports whether replaying the record advances the
// store's write generation (Declare does not).
func (r *record) bumpsGeneration() bool { return r.op == opPut || r.op == opPutAll }

// --- primitive encoders -------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// decoder reads the primitives back, tracking a sticky error so decode
// code stays linear. Corruption that slips past the CRC (or a version
// mismatch) surfaces as a decode error, which recovery treats exactly
// like a bad checksum: truncate at the record.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("durable: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("durable: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("durable: truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("durable: truncated string of length %d at offset %d", n, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail("durable: truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// --- values -------------------------------------------------------------

func appendValue(b []byte, v model.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case model.KindNumber:
		f, _ := v.AsNumber()
		b = appendFloat(b, f)
	case model.KindInt:
		i, _ := v.AsInt()
		b = appendVarint(b, i)
	case model.KindString:
		s, _ := v.AsString()
		b = appendString(b, s)
	case model.KindPeriod:
		p, _ := v.AsPeriod()
		b = append(b, byte(p.Freq))
		b = appendVarint(b, p.Ord)
	case model.KindBool:
		bv, _ := v.AsBool()
		if bv {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func (d *decoder) value() model.Value {
	switch k := model.Kind(d.byte()); k {
	case model.KindNumber:
		return model.Num(d.float())
	case model.KindInt:
		return model.Int(d.varint())
	case model.KindString:
		return model.Str(d.string())
	case model.KindPeriod:
		f := model.Frequency(d.byte())
		return model.Per(model.Period{Freq: f, Ord: d.varint()})
	case model.KindBool:
		return model.Bool(d.byte() != 0)
	default:
		d.fail("durable: unknown value kind %d", k)
		return model.Value{}
	}
}

// --- schemas and cubes --------------------------------------------------

func appendSchema(b []byte, sch model.Schema) []byte {
	b = appendString(b, sch.Name)
	b = appendString(b, sch.Measure)
	b = appendUvarint(b, uint64(len(sch.Dims)))
	for _, dim := range sch.Dims {
		b = appendString(b, dim.Name)
		b = append(b, byte(dim.Type.Kind), byte(dim.Type.Freq))
	}
	return b
}

func (d *decoder) schema() model.Schema {
	sch := model.Schema{Name: d.string(), Measure: d.string()}
	n := d.uvarint()
	if d.err != nil {
		return sch
	}
	if n > uint64(len(d.b)) { // each dim takes at least one byte
		d.fail("durable: schema %s claims %d dimensions", sch.Name, n)
		return sch
	}
	sch.Dims = make([]model.Dim, n)
	for i := range sch.Dims {
		sch.Dims[i] = model.Dim{
			Name: d.string(),
			Type: model.DimType{Kind: model.DimKind(d.byte()), Freq: model.Frequency(d.byte())},
		}
	}
	return sch
}

// appendCube serializes the schema plus every tuple in deterministic
// (sorted) order, so identical cubes always encode to identical bytes.
func appendCube(b []byte, c *model.Cube) []byte {
	b = appendSchema(b, c.Schema())
	tuples := c.Tuples()
	b = appendUvarint(b, uint64(len(tuples)))
	for _, tu := range tuples {
		for _, v := range tu.Dims {
			b = appendValue(b, v)
		}
		b = appendFloat(b, tu.Measure)
	}
	return b
}

func (d *decoder) cube() *model.Cube {
	sch := d.schema()
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) { // each tuple takes at least one byte
		d.fail("durable: cube %s claims %d tuples", sch.Name, n)
		return nil
	}
	c := model.NewCube(sch)
	dims := make([]model.Value, len(sch.Dims))
	for i := uint64(0); i < n && d.err == nil; i++ {
		for j := range dims {
			dims[j] = d.value()
		}
		m := d.float()
		if d.err != nil {
			return nil
		}
		if err := c.Replace(dims, m); err != nil {
			d.fail("durable: cube %s tuple: %v", sch.Name, err)
			return nil
		}
	}
	return c
}

// --- records ------------------------------------------------------------

func encodePut(c *model.Cube, asOf time.Time) []byte {
	b := []byte{opPut}
	b = appendVarint(b, asOf.UnixNano())
	return appendCube(b, c)
}

func encodePutAll(cubes map[string]*model.Cube, asOf time.Time) []byte {
	b := []byte{opPutAll}
	b = appendVarint(b, asOf.UnixNano())
	names := make([]string, 0, len(cubes))
	for n := range cubes {
		names = append(names, n)
	}
	sort.Strings(names)
	b = appendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = appendCube(b, cubes[n])
	}
	return b
}

func encodeDeclare(sch model.Schema) []byte {
	return appendSchema([]byte{opDeclare}, sch)
}

func decodeRecord(payload []byte) (*record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("durable: empty record")
	}
	d := &decoder{b: payload, off: 1}
	r := &record{op: payload[0]}
	switch r.op {
	case opPut:
		r.asOf = time.Unix(0, d.varint())
		c := d.cube()
		if d.err != nil {
			return nil, d.err
		}
		r.cubes = map[string]*model.Cube{c.Schema().Name: c}
	case opPutAll:
		r.asOf = time.Unix(0, d.varint())
		n := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if n > uint64(len(payload)) {
			return nil, fmt.Errorf("durable: batch claims %d cubes", n)
		}
		r.cubes = make(map[string]*model.Cube, n)
		for i := uint64(0); i < n; i++ {
			c := d.cube()
			if d.err != nil {
				return nil, d.err
			}
			r.cubes[c.Schema().Name] = c
		}
	case opDeclare:
		r.schema = d.schema()
		if d.err != nil {
			return nil, d.err
		}
	default:
		return nil, fmt.Errorf("durable: unknown record opcode %d", r.op)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: %d trailing bytes after record", len(payload)-d.off)
	}
	return r, nil
}
