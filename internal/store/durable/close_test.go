package durable

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"exlengine/internal/model"
)

// TestCloseUnderConcurrentPutAll is the regression test for the
// Close/group-commit race: Close used to fsync and close the WAL file
// while committers that had already appended their records were still
// inside the group-commit protocol, so a commit could be acked against a
// closed descriptor — or fail spuriously — without being fsync-covered.
// Close must drain in-flight commits first: after Close returns, every
// PutAll that was acknowledged (returned nil) must survive recovery.
func TestCloseUnderConcurrentPutAll(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, WithGroupCommit(200*time.Microsecond))

	const workers = 6
	for w := 0; w < workers; w++ {
		if err := st.Declare(yearSchema(fmt.Sprintf("W%d", w))); err != nil {
			t.Fatal(err)
		}
	}

	acked := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("W%d", w)
			for i := 1; ; i++ {
				c := model.NewCube(yearSchema(name))
				if err := c.Put([]model.Value{model.Per(model.NewAnnual(2020))}, float64(i)); err != nil {
					return
				}
				c.Freeze()
				if err := st.PutAll(map[string]*model.Cube{name: c}, time.Unix(int64(i), 0)); err != nil {
					// The store closed mid-write: this commit was never
					// acked, so it carries no durability promise.
					return
				}
				acked[w] = i
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	if err := st.Close(); err != nil {
		t.Fatalf("close under load: %v", err)
	}
	wg.Wait()

	re := openT(t, dir)
	defer re.Close()
	for w := 0; w < workers; w++ {
		if acked[w] == 0 {
			continue
		}
		c, ok := re.Get(fmt.Sprintf("W%d", w))
		if !ok {
			t.Fatalf("worker %d: acked %d commits but cube missing after recovery", w, acked[w])
		}
		got := annual(t, c, 2020)
		// Recovery may see commits past the last ack (appended but
		// unacked when Close hit), never fewer.
		if got < float64(acked[w]) {
			t.Errorf("worker %d: recovered value %v < last acked %d — an acked commit was lost", w, got, acked[w])
		}
	}
}
