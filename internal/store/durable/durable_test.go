package durable

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"exlengine/internal/model"
	"exlengine/internal/obs"
)

func yearSchema(name string) model.Schema {
	return model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v")
}

func yearCube(t *testing.T, name string, vals map[int]float64) *model.Cube {
	t.Helper()
	c := model.NewCube(yearSchema(name))
	for y, v := range vals {
		if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func annual(t *testing.T, c *model.Cube, year int) float64 {
	t.Helper()
	v, ok := c.Get([]model.Value{model.Per(model.NewAnnual(year))})
	if !ok {
		t.Fatalf("no tuple for year %d", year)
	}
	return v
}

func openT(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	st, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCodecRoundTrip exercises every record opcode and value kind through
// encode + decode.
func TestCodecRoundTrip(t *testing.T) {
	sch := model.NewSchema("M", []model.Dim{
		{Name: "s", Type: model.TString},
		{Name: "q", Type: model.TMonth},
	}, "x")
	c := model.NewCube(sch)
	for i := 0; i < 5; i++ {
		dims := []model.Value{model.Str(string(rune('a' + i))), model.Per(model.Period{Freq: model.Monthly, Ord: int64(i)})}
		if err := c.Put(dims, float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	asOf := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)

	rec, err := decodeRecord(encodePut(c, asOf))
	if err != nil {
		t.Fatal(err)
	}
	if rec.op != opPut || !rec.asOf.Equal(asOf) {
		t.Fatalf("put header: op=%d asOf=%v", rec.op, rec.asOf)
	}
	if got := rec.cubes["M"]; got == nil || !got.Equal(c, 0) {
		t.Fatal("put cube does not round-trip")
	}

	other := yearCube(t, "Y", map[int]float64{2020: 1, 2021: 2})
	rec, err = decodeRecord(encodePutAll(map[string]*model.Cube{"M": c, "Y": other}, asOf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.cubes) != 2 || !rec.cubes["Y"].Equal(other, 0) || !rec.cubes["M"].Equal(c, 0) {
		t.Fatal("putall cubes do not round-trip")
	}

	rec, err = decodeRecord(encodeDeclare(sch))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.schema.SameDims(sch) || rec.schema.Name != "M" || rec.schema.Measure != "x" {
		t.Fatalf("declare schema = %v", rec.schema)
	}

	// Corruption that a CRC would not catch (a truncated payload with a
	// valid checksum cannot happen, but a logically short one can) is a
	// decode error, not a panic.
	raw := encodePut(c, asOf)
	if _, err := decodeRecord(raw[:len(raw)-3]); err == nil {
		t.Error("truncated payload must fail to decode")
	}
	if _, err := decodeRecord(append(raw, 0)); err == nil {
		t.Error("trailing bytes must fail to decode")
	}
	if _, err := decodeRecord([]byte{42}); err == nil {
		t.Error("unknown opcode must fail to decode")
	}
}

// TestReopenRoundTrip puts versions, reopens and checks that contents,
// version history, as-of reads and the write generation all survive.
func TestReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	t2 := t0.Add(48 * time.Hour)

	st := openT(t, dir)
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 1}), t0); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 2}), t2); err != nil {
		t.Fatal(err)
	}
	if err := st.PutAll(map[string]*model.Cube{
		"B": yearCube(t, "B", map[int]float64{2019: 10}),
	}, t2); err != nil {
		t.Fatal(err)
	}
	genBefore := st.Generation()
	if genBefore != 3 {
		t.Fatalf("generation = %d, want 3", genBefore)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st = openT(t, dir)
	defer st.Close()
	rec := st.Recovery()
	if rec.Generation != genBefore {
		t.Errorf("recovered generation = %d, want %d", rec.Generation, genBefore)
	}
	if rec.TruncatedRecords != 0 || rec.CorruptSegments != 0 {
		t.Errorf("clean reopen repaired something: %+v", rec)
	}
	cur, ok := st.Get("A")
	if !ok || annual(t, cur, 2019) != 2 {
		t.Fatalf("current A after reopen = %v", cur)
	}
	old, ok := st.GetAsOf("A", t0.Add(time.Hour))
	if !ok || annual(t, old, 2019) != 1 {
		t.Fatal("as-of read lost after reopen")
	}
	if vs := st.Versions("A"); len(vs) != 2 || !vs[0].Equal(t0) || !vs[1].Equal(t2) {
		t.Fatalf("Versions(A) = %v", vs)
	}
	b, ok := st.Get("B")
	if !ok || annual(t, b, 2019) != 10 {
		t.Fatal("PutAll cube lost after reopen")
	}
	if _, ok := st.Schema("A"); !ok {
		t.Fatal("schema lost after reopen")
	}

	// The generation continues where it left off.
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 3}), t2.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != genBefore+1 {
		t.Errorf("generation after reopen+put = %d, want %d", g, genBefore+1)
	}
}

// TestDeclarePersists checks schema-only state survives a reopen without
// bumping the generation.
func TestDeclarePersists(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir)
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	// Identical re-declaration writes nothing.
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 0 {
		t.Fatalf("declare bumped generation to %d", g)
	}
	st.Close()

	st = openT(t, dir)
	defer st.Close()
	if _, ok := st.Schema("A"); !ok {
		t.Fatal("declared schema lost after reopen")
	}
	if g := st.Generation(); g != 0 {
		t.Fatalf("generation after reopen = %d, want 0", g)
	}
	if err := st.Declare(model.NewSchema("A", []model.Dim{{Name: "x", Type: model.TString}}, "v")); err == nil {
		t.Fatal("conflicting re-declaration must fail after reopen")
	}
}

// TestCompactionKeepsOnePair checks Compact folds the WAL into a snapshot,
// prunes superseded files and that recovery afterwards replays nothing.
func TestCompactionKeepsOnePair(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, WithCompactAfter(-1))
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put(yearCube(t, "A", map[int]float64{2019: float64(i)}), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("after Compact dir holds %d files, want snapshot+wal", len(names))
	}
	// Writes continue on the rotated WAL.
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 99}), time.Unix(9, 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st = openT(t, dir)
	defer st.Close()
	rec := st.Recovery()
	if rec.SnapshotGen != 5 {
		t.Errorf("recovery snapshot generation = %d, want 5", rec.SnapshotGen)
	}
	if rec.ReplayedRecords != 1 {
		t.Errorf("replayed %d records, want 1 (the post-compaction put)", rec.ReplayedRecords)
	}
	if g := st.Generation(); g != 6 {
		t.Errorf("generation = %d, want 6", g)
	}
	cur, _ := st.Get("A")
	if annual(t, cur, 2019) != 99 {
		t.Error("post-compaction put lost")
	}
}

// TestAutoCompaction checks that crossing CompactAfterBytes triggers a
// snapshot + rotation on its own.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st := openT(t, dir, WithCompactAfter(1), WithMetrics(reg)) // every commit compacts
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put(yearCube(t, "A", map[int]float64{2019: float64(i)}), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Open writes one segment, then declare + each put compacts once.
	if n := reg.Counter(obs.MetricStoreSegments).Value(); n < 4 {
		t.Errorf("segments written = %d, want >= 4 (auto-compaction did not run)", n)
	}
	st.Close()

	st = openT(t, dir)
	defer st.Close()
	if g := st.Generation(); g != 3 {
		t.Errorf("generation = %d, want 3", g)
	}
}

// TestTornTailTruncated appends garbage to the WAL and checks recovery
// cuts it off without losing committed records.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, WithCompactAfter(-1))
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Put(yearCube(t, "A", map[int]float64{2019: float64(i)}), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	walPath := activeWAL(t, dir)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record header: the shape an interrupted append leaves.
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st = openT(t, dir)
	defer st.Close()
	rec := st.Recovery()
	if rec.TruncatedRecords != 1 {
		t.Errorf("truncated records = %d, want 1", rec.TruncatedRecords)
	}
	if rec.Generation != 3 {
		t.Errorf("generation = %d, want 3", rec.Generation)
	}
	cur, _ := st.Get("A")
	if annual(t, cur, 2019) != 3 {
		t.Error("committed record lost to the torn tail")
	}
}

// TestCorruptRecordTruncatesSuffix flips one byte in the middle of the
// WAL and checks recovery keeps exactly the prefix before it.
func TestCorruptRecordTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, WithCompactAfter(-1))
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Put(yearCube(t, "A", map[int]float64{2019: float64(i)}), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	walPath := activeWAL(t, dir)
	scan, err := readWAL(OSFS{}, walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Records: declare, put1, put2, put3. Corrupt put2's payload.
	if len(scan.offsets) != 4 {
		t.Fatalf("wal holds %d records, want 4", len(scan.offsets))
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[scan.offsets[2]+recordHeaderLen] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st = openT(t, dir)
	defer st.Close()
	rec := st.Recovery()
	if rec.TruncatedRecords != 1 {
		t.Errorf("truncated records = %d, want 1", rec.TruncatedRecords)
	}
	if rec.Generation != 1 {
		t.Errorf("generation = %d, want 1 (prefix before the corrupt record)", rec.Generation)
	}
	cur, _ := st.Get("A")
	if annual(t, cur, 2019) != 1 {
		t.Error("recovered state is not the prefix before the corruption")
	}
}

// TestCorruptSnapshotFallsBack corrupts the newest snapshot and checks
// recovery degrades to the older one and re-replays the WAL.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, WithCompactAfter(-1))
	if err := st.Declare(yearSchema("A")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := st.Put(yearCube(t, "A", map[int]float64{2019: float64(i)}), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// dir now holds seg-0 + wal-0 (declare + 2 puts). Stash them, reopen
	// (which folds into seg-2 + wal-2 and prunes), then restore, so both
	// snapshot generations coexist as after an interrupted prune.
	seg0, err := os.ReadFile(filepath.Join(dir, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	wal0, err := os.ReadFile(filepath.Join(dir, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	st = openT(t, dir)
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)), seg0, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(0)), wal0, 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot.
	seg2path := filepath.Join(dir, segmentName(2))
	raw, err := os.ReadFile(seg2path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg2path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st = openT(t, dir)
	defer st.Close()
	rec := st.Recovery()
	if rec.CorruptSegments != 1 {
		t.Errorf("corrupt segments = %d, want 1", rec.CorruptSegments)
	}
	if rec.SnapshotGen != 0 {
		t.Errorf("recovery started from snapshot %d, want 0", rec.SnapshotGen)
	}
	if rec.Generation != 2 {
		t.Errorf("generation = %d, want 2", rec.Generation)
	}
	cur, _ := st.Get("A")
	if annual(t, cur, 2019) != 2 {
		t.Error("fallback recovery lost data")
	}
}

// TestGroupCommitConcurrent drives concurrent writers through a group-
// commit window and checks every acknowledged commit survives a reopen
// with fewer fsyncs than commits.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, WithGroupCommit(500*time.Microsecond), WithCompactAfter(-1))
	const writers, puts = 8, 10
	for w := 0; w < writers; w++ {
		if err := st.Declare(yearSchema(cubeName(w))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < puts; k++ {
				c := model.NewCube(yearSchema(cubeName(w)))
				if err := c.Put([]model.Value{model.Per(model.NewAnnual(2019))}, float64(k)); err != nil {
					errs <- err
					return
				}
				if err := st.Put(c, time.Unix(int64(k), 0)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if g := st.Generation(); g != writers*puts {
		t.Fatalf("generation = %d, want %d", g, writers*puts)
	}
	_, fsyncs := st.WALStats()
	if fsyncs >= writers*puts {
		t.Errorf("fsyncs = %d for %d commits; group commit did not batch", fsyncs, writers*puts)
	}
	st.Close()

	st = openT(t, dir)
	defer st.Close()
	if g := st.Generation(); g != writers*puts {
		t.Fatalf("generation after reopen = %d, want %d", g, writers*puts)
	}
	for w := 0; w < writers; w++ {
		c, ok := st.Get(cubeName(w))
		if !ok || annual(t, c, 2019) != puts-1 {
			t.Fatalf("cube %s lost acknowledged commits", cubeName(w))
		}
	}
}

func cubeName(w int) string { return string(rune('A' + w)) }

// activeWAL returns the single wal-*.log in dir.
func activeWAL(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("active WAL: %v (%v)", matches, err)
	}
	return matches[0]
}

// TestRejectedWriteDoesNotPoison checks an ordinary validation failure
// (version ordering) is an error but leaves the store writable.
func TestRejectedWriteDoesNotPoison(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir)
	defer st.Close()
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 1}), time.Unix(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 2}), time.Unix(5, 0)); err == nil {
		t.Fatal("out-of-order version must be rejected")
	}
	if err := st.Put(yearCube(t, "A", map[int]float64{2019: 3}), time.Unix(20, 0)); err != nil {
		t.Fatalf("store poisoned by a rejected write: %v", err)
	}
	if g := st.Generation(); g != 2 {
		t.Errorf("generation = %d, want 2", g)
	}
}

// TestEmptyPutAllIsNoop mirrors the in-memory store contract.
func TestEmptyPutAllIsNoop(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir)
	defer st.Close()
	if err := st.PutAll(nil, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 0 {
		t.Errorf("empty PutAll bumped generation to %d", g)
	}
}
