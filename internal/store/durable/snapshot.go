package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"time"

	"exlengine/internal/model"
	"exlengine/internal/store"
)

// Segment snapshot layout:
//
//	8-byte magic "EXLSEG01"
//	8-byte little-endian generation
//	payload (full store state: schemas + every cube's version history)
//	4-byte little-endian CRC32C over generation + payload
//
// A snapshot is written to a temporary name, fsync'd, renamed into place
// and the directory fsync'd, so a crash mid-snapshot leaves either the
// old state or the new one, never a half-written segment. The trailing
// CRC lets recovery reject a segment corrupted after the fact and fall
// back to the previous one.
var segMagic = [8]byte{'E', 'X', 'L', 'S', 'E', 'G', '0', '1'}

// snapshotState is the in-memory form of a loaded segment.
type snapshotState struct {
	gen     uint64
	schemas map[string]model.Schema
	history map[string][]store.Version
}

// encodeSnapshot serializes the full state of the wrapped store. Cube
// versions are the store's frozen shared instances, so building the
// payload reads them without copies.
func encodeSnapshot(mem *store.Store, gen uint64) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, gen)

	schemas := mem.Schemas()
	names := make([]string, 0, len(schemas))
	for n := range schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	b = appendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = appendSchema(b, schemas[n])
	}

	type hist struct {
		name     string
		versions []store.Version
	}
	var hists []hist
	for _, n := range names {
		if vs := mem.History(n); len(vs) > 0 {
			hists = append(hists, hist{name: n, versions: vs})
		}
	}
	b = appendUvarint(b, uint64(len(hists)))
	for _, h := range hists {
		b = appendString(b, h.name)
		b = appendUvarint(b, uint64(len(h.versions)))
		for _, v := range h.versions {
			b = appendVarint(b, v.AsOf.UnixNano())
			b = appendCube(b, v.Cube)
		}
	}
	return b
}

func decodeSnapshot(raw []byte) (*snapshotState, error) {
	d := &decoder{b: raw}
	st := &snapshotState{
		gen:     binary.LittleEndian.Uint64(raw[:8]),
		schemas: make(map[string]model.Schema),
		history: make(map[string][]store.Version),
	}
	d.off = 8
	nsch := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nsch > uint64(len(raw)) {
		return nil, fmt.Errorf("durable: segment claims %d schemas", nsch)
	}
	for i := uint64(0); i < nsch; i++ {
		sch := d.schema()
		if d.err != nil {
			return nil, d.err
		}
		st.schemas[sch.Name] = sch
	}
	ncubes := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if ncubes > nsch {
		return nil, fmt.Errorf("durable: segment has %d cube histories for %d schemas", ncubes, nsch)
	}
	for i := uint64(0); i < ncubes; i++ {
		name := d.string()
		nv := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if nv > uint64(len(raw)) {
			return nil, fmt.Errorf("durable: cube %s claims %d versions", name, nv)
		}
		vs := make([]store.Version, 0, nv)
		for j := uint64(0); j < nv; j++ {
			asOf := time.Unix(0, d.varint())
			c := d.cube()
			if d.err != nil {
				return nil, d.err
			}
			vs = append(vs, store.Version{AsOf: asOf, Cube: c.Freeze()})
		}
		st.history[name] = vs
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(raw) {
		return nil, fmt.Errorf("durable: %d trailing bytes after segment payload", len(raw)-d.off)
	}
	return st, nil
}

// writeSnapshot persists a segment atomically and returns its file name.
func writeSnapshot(fs FS, dir string, mem *store.Store, gen uint64) (string, error) {
	body := encodeSnapshot(mem, gen)
	buf := make([]byte, 0, len(segMagic)+len(body)+4)
	buf = append(buf, segMagic[:]...)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))

	name := segmentName(gen)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return "", err
	}
	if err := writeFull(f, buf); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return "", err
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", err
	}
	return name, nil
}

// loadSnapshot reads and verifies a segment file.
func loadSnapshot(fs FS, path string) (*snapshotState, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(segMagic)+8+4 || [8]byte(raw[:8]) != segMagic {
		return nil, fmt.Errorf("durable: %s is not a segment snapshot", path)
	}
	body, sum := raw[8:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("durable: %s fails checksum verification", path)
	}
	return decodeSnapshot(body)
}
