package durable

import (
	"errors"
	"testing"
	"time"

	"exlengine/internal/store"
)

// TestReopenGenerationTranslation pins the durable generation axis
// across a restart: the generation counter continues from where recovery
// ended, a generation captured at shutdown translates to "unchanged"
// after reopen, post-reopen writes diff correctly against it, and a
// generation older than the recovery point is refused with
// ErrDeltaUnavailable (recovery renumbers commits, so pre-recovery
// generations cannot be mapped onto the replayed history).
func TestReopenGenerationTranslation(t *testing.T) {
	dir := t.TempDir()
	t1 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

	d := openT(t, dir)
	if err := d.Put(yearCube(t, "A", map[int]float64{2020: 1}), t1); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(yearCube(t, "A", map[int]float64{2020: 1, 2021: 2}), t1.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	genAtClose := d.Generation()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openT(t, dir)
	defer d2.Close()
	if g := d2.Generation(); g != genAtClose {
		t.Fatalf("generation after reopen = %d, want %d (must continue, not reset)", g, genAtClose)
	}

	// The shutdown-time generation saw the current state: empty delta.
	d0, err := d2.Delta("A", genAtClose)
	if err != nil {
		t.Fatalf("delta at the shutdown generation: %v", err)
	}
	if !d0.Empty() {
		t.Fatalf("delta at the shutdown generation is non-empty: +%d ~%d -%d", len(d0.Added), len(d0.Changed), len(d0.Deleted))
	}

	// A write after reopen must diff against the recovered history.
	if err := d2.Put(yearCube(t, "A", map[int]float64{2020: 1, 2021: 7}), t1.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if g := d2.Generation(); g != genAtClose+1 {
		t.Fatalf("generation after one post-reopen write = %d, want %d", g, genAtClose+1)
	}
	dd, err := d2.Delta("A", genAtClose)
	if err != nil {
		t.Fatal(err)
	}
	if len(dd.Changed) != 1 || dd.Changed[0].Measure != 7 || len(dd.Added) != 0 || len(dd.Deleted) != 0 {
		t.Errorf("post-reopen delta = +%d ~%d -%d, want exactly the 2021 change",
			len(dd.Added), len(dd.Changed), len(dd.Deleted))
	}

	// Generations from before the recovery point are unmappable.
	if _, err := d2.Delta("A", genAtClose-1); !errors.Is(err, store.ErrDeltaUnavailable) {
		t.Errorf("pre-recovery generation: err = %v, want ErrDeltaUnavailable", err)
	}
}
