// Crash-recovery verification for the durable store, from two angles:
//
//   - TestCrashAtEveryOffset simulates power loss at every byte offset of
//     the workload's write stream (via faults.FaultFS) and checks the
//     reopened store is always a consistent prefix of the acknowledged
//     commits — hundreds of deterministic kill-mid-commit iterations.
//   - TestCrashRecoveryKillLoop SIGKILLs a real writer subprocess
//     mid-commit in a loop over one shared directory and checks the same
//     prefix property against the commits the child acknowledged on
//     stdout. EXL_CRASH_ITERS scales the loop (CI runs 100).
package durable_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"exlengine/internal/faults"
	"exlengine/internal/model"
	"exlengine/internal/store/durable"
)

func crashSchema() model.Schema {
	return model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v")
}

func crashCube(t testing.TB, v float64) *model.Cube {
	t.Helper()
	c := model.NewCube(crashSchema())
	if err := c.Put([]model.Value{model.Per(model.NewAnnual(2019))}, v); err != nil {
		t.Fatal(err)
	}
	return c
}

// crashWorkload opens a store in dir over fs, declares A and puts puts
// versions with value k at time k. It returns the highest acknowledged
// generation; a disk fault stops it early.
func crashWorkload(t testing.TB, dir string, fs durable.FS, puts int) (acked uint64) {
	t.Helper()
	st, err := durable.Open(dir, durable.WithFS(fs), durable.WithCompactAfter(-1))
	if err != nil {
		return 0
	}
	if err := st.Declare(crashSchema()); err != nil {
		st.Close()
		return 0
	}
	for k := 1; k <= puts; k++ {
		if err := st.Put(crashCube(t, float64(k)), time.Unix(int64(k), 0)); err != nil {
			break
		}
		acked = uint64(k)
	}
	st.Close()
	return acked
}

// verifyPrefix reopens dir fault-free and checks the recovered state is a
// consistent prefix: generation g with acked <= g <= puts, current value
// g, and every as-of read matching the version history.
func verifyPrefix(t testing.TB, dir string, acked uint64, puts int, label string) {
	t.Helper()
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", label, err)
	}
	defer st.Close()
	rec := st.Recovery()
	g := rec.Generation
	if g < acked {
		t.Fatalf("%s: recovered generation %d < acknowledged %d: durable commit lost", label, g, acked)
	}
	if g > uint64(puts) {
		t.Fatalf("%s: recovered generation %d > %d commits ever attempted", label, g, puts)
	}
	if g == 0 {
		return
	}
	c, ok := st.Get("A")
	if !ok {
		t.Fatalf("%s: generation %d but cube missing", label, g)
	}
	v, ok := c.Get([]model.Value{model.Per(model.NewAnnual(2019))})
	if !ok || v != float64(g) {
		t.Fatalf("%s: recovered value %v at generation %d: state is not a prefix", label, v, g)
	}
	for j := uint64(1); j <= g; j++ {
		old, ok := st.GetAsOf("A", time.Unix(int64(j), 0))
		if !ok {
			t.Fatalf("%s: as-of read at %d missing after recovery", label, j)
		}
		v, _ := old.Get([]model.Value{model.Per(model.NewAnnual(2019))})
		if v != float64(j) {
			t.Fatalf("%s: as-of %d = %v, want %v: version history torn", label, j, v, float64(j))
		}
	}
}

// TestCrashAtEveryOffset sweeps a simulated power loss across the whole
// byte range of the workload's write stream.
func TestCrashAtEveryOffset(t *testing.T) {
	const puts = 6
	// Fault-free run to learn the byte range of the write stream.
	probe := faults.NewFaultFS(durable.OSFS{})
	if acked := crashWorkload(t, t.TempDir(), probe, puts); acked != puts {
		t.Fatalf("fault-free workload acknowledged %d of %d puts", acked, puts)
	}
	total := probe.BytesWritten()
	if total == 0 {
		t.Fatal("probe run wrote nothing")
	}
	step := int64(1)
	if testing.Short() {
		step = total/100 + 1
	}
	iters := 0
	for budget := int64(0); budget <= total; budget += step {
		dir := t.TempDir()
		fs := faults.NewFaultFS(durable.OSFS{}).CrashAtByte(budget)
		acked := crashWorkload(t, dir, fs, puts)
		verifyPrefix(t, dir, acked, puts, fmt.Sprintf("crash at byte %d", budget))
		iters++
	}
	if iters < 100 {
		t.Fatalf("only %d crash iterations; the sweep must cover at least 100", iters)
	}
	t.Logf("%d crash offsets swept over a %d-byte write stream", iters, total)
}

// TestCrashRecoveryKillLoop SIGKILLs a writer subprocess mid-commit in a
// loop over one shared store directory. The child prints "acked N" after
// each durable commit; after each kill the parent verifies the reopened
// store holds a prefix no shorter than the acknowledged generations.
func TestCrashRecoveryKillLoop(t *testing.T) {
	if os.Getenv("EXL_CRASH_HELPER") == "1" {
		t.Skip("helper mode")
	}
	iters := 8
	if s := os.Getenv("EXL_CRASH_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("EXL_CRASH_ITERS=%q: %v", s, err)
		}
		iters = n
	}
	dir := t.TempDir()
	for i := 0; i < iters; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashWriterHelper$")
		cmd.Env = append(os.Environ(), "EXL_CRASH_HELPER=1", "EXL_CRASH_DIR="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Kill after a varying number of acknowledged commits; every
		// fourth iteration kills blind, to land inside Open's recovery
		// and the first commit as often as inside steady-state commits.
		want := 1 + i%3
		if i%4 == 3 {
			want = 0
			time.Sleep(time.Duration(i%7) * 100 * time.Microsecond)
		}
		var acked uint64
		sc := bufio.NewScanner(out)
		for want > 0 && sc.Scan() {
			line := sc.Text()
			if n, ok := strings.CutPrefix(line, "acked "); ok {
				g, err := strconv.ParseUint(n, 10, 64)
				if err != nil {
					t.Fatalf("child said %q: %v", line, err)
				}
				acked = g
				want--
			}
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()
		verifyKilled(t, dir, acked, i)
	}
}

// verifyKilled checks the store holds every acknowledged commit and a
// consistent version history after a SIGKILL.
func verifyKilled(t *testing.T, dir string, acked uint64, iter int) {
	t.Helper()
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatalf("iteration %d: reopen after SIGKILL: %v", iter, err)
	}
	defer st.Close()
	g := st.Generation()
	if g < acked {
		t.Fatalf("iteration %d: recovered generation %d < acknowledged %d: durable commit lost", iter, g, acked)
	}
	if g == 0 {
		return
	}
	c, ok := st.Get("A")
	if !ok {
		t.Fatalf("iteration %d: generation %d but cube missing", iter, g)
	}
	v, ok := c.Get([]model.Value{model.Per(model.NewAnnual(2019))})
	if !ok || v != float64(g) {
		t.Fatalf("iteration %d: recovered value %v at generation %d: not a prefix", iter, v, g)
	}
}

// TestCrashWriterHelper is the subprocess body of the kill loop: it
// opens the store, then commits versions as fast as it can, printing
// "acked N" after each one, until it is killed.
func TestCrashWriterHelper(t *testing.T) {
	if os.Getenv("EXL_CRASH_HELPER") != "1" {
		t.Skip("run by TestCrashRecoveryKillLoop")
	}
	dir := os.Getenv("EXL_CRASH_DIR")
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatalf("helper open: %v", err)
	}
	defer st.Close()
	if err := st.Declare(crashSchema()); err != nil {
		t.Fatalf("helper declare: %v", err)
	}
	g := st.Generation()
	for k := g + 1; k <= g+10000; k++ {
		if err := st.Put(crashCube(t, float64(k)), time.Unix(int64(k), 0)); err != nil {
			t.Fatalf("helper put %d: %v", k, err)
		}
		fmt.Printf("acked %d\n", k)
	}
}
