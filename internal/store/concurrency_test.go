package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exlengine/internal/model"
)

// TestVersionsDefensiveCopy pins the Versions contract: the returned
// slice is sorted ascending and is the caller's to mutate — writing into
// it must not corrupt the store's version history.
func TestVersionsDefensiveCopy(t *testing.T) {
	s := New()
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		c := yearCube(t, "A", map[int]float64{2019: float64(i)})
		if err := s.Put(c, t0.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	vs := s.Versions("A")
	if len(vs) != 4 {
		t.Fatalf("Versions = %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if !vs[i-1].Before(vs[i]) {
			t.Fatalf("Versions not sorted ascending: %v", vs)
		}
	}
	// Scribble over the returned slice; the store must be unaffected.
	for i := range vs {
		vs[i] = time.Time{}
	}
	vs2 := s.Versions("A")
	if len(vs2) != 4 || vs2[0].IsZero() {
		t.Fatalf("mutating the returned slice corrupted the store: %v", vs2)
	}
	if !vs2[0].Equal(t0) || !vs2[3].Equal(t0.Add(3*time.Hour)) {
		t.Fatalf("Versions after scribble = %v", vs2)
	}
	// As-of reads still resolve against the intact history.
	c, ok := s.GetAsOf("A", t0.Add(90*time.Minute))
	if !ok {
		t.Fatal("GetAsOf after scribble")
	}
	if v, _ := c.Get([]model.Value{model.Per(model.NewAnnual(2019))}); v != 1 {
		t.Fatalf("as-of value = %v, want 1", v)
	}
}

// TestHistorySharesFrozenCubes pins the History contract: entries are
// sorted, frozen, and shared (zero-copy) with the store.
func TestHistorySharesFrozenCubes(t *testing.T) {
	s := New()
	t0 := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		c := yearCube(t, "A", map[int]float64{2019: float64(i)})
		if err := s.Put(c, t0.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	h := s.History("A")
	if len(h) != 3 {
		t.Fatalf("History has %d entries", len(h))
	}
	for i, v := range h {
		if !v.Cube.Frozen() {
			t.Fatalf("history entry %d is not frozen", i)
		}
		if i > 0 && !h[i-1].AsOf.Before(v.AsOf) {
			t.Fatalf("history not sorted: %v before %v", h[i-1].AsOf, v.AsOf)
		}
	}
	cur, _ := s.Get("A")
	if h[2].Cube != cur {
		t.Error("history tail is not the shared current version")
	}
}

// TestConcurrentWritesVsSnapshots races writers (Put on distinct cubes,
// an atomic PutAll pair) against snapshot readers. Run under -race. It
// asserts the MVCC invariants the engine relies on:
//
//   - the generation observed by SnapshotVersioned never decreases;
//   - a snapshot's generation g means exactly the first g commits are
//     visible — here checked through the PutAll pair, which must appear
//     in lockstep in every snapshot (all-or-nothing visibility).
func TestConcurrentWritesVsSnapshots(t *testing.T) {
	s := New()
	const writers = 4
	const puts = 50
	if err := s.Declare(yearSchema("X")); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare(yearSchema("Y")); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, writers+2)

	// Writers: each owns one cube, so version ordering never conflicts.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("W%d", w)
			for k := 1; k <= puts; k++ {
				c := yearCube(t, name, map[int]float64{2019: float64(k)})
				if err := s.Put(c, time.Unix(int64(k), 0)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// One PutAll writer keeps X and Y in lockstep, atomically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= puts; k++ {
			pair := map[string]*model.Cube{
				"X": yearCube(t, "X", map[int]float64{2019: float64(k)}),
				"Y": yearCube(t, "Y", map[int]float64{2019: float64(k)}),
			}
			if err := s.PutAll(pair, time.Unix(int64(k), 0)); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Readers: generation monotonicity and PutAll atomicity.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for !stop.Load() {
				snap, gen := s.SnapshotVersioned()
				if gen < last {
					errc <- fmt.Errorf("generation went backwards: %d after %d", gen, last)
					return
				}
				last = gen
				x, okx := snap["X"]
				y, oky := snap["Y"]
				if okx != oky {
					errc <- fmt.Errorf("PutAll pair half-visible at generation %d", gen)
					return
				}
				if okx {
					vx, _ := x.Get([]model.Value{model.Per(model.NewAnnual(2019))})
					vy, _ := y.Get([]model.Value{model.Per(model.NewAnnual(2019))})
					if vx != vy {
						errc <- fmt.Errorf("PutAll pair torn at generation %d: X=%v Y=%v", gen, vx, vy)
						return
					}
				}
				for _, c := range snap {
					if !c.Frozen() {
						errc <- fmt.Errorf("snapshot cube not frozen at generation %d", gen)
						return
					}
				}
			}
		}()
	}

	// Wait for the writers by watching the generation — the total commit
	// count is fixed — then release the readers.
	for s.Generation() < uint64((writers+1)*puts) {
		select {
		case err := <-errc:
			t.Fatal(err)
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if g := s.Generation(); g != uint64((writers+1)*puts) {
		t.Fatalf("generation = %d, want %d", g, (writers+1)*puts)
	}
}
