// Package store implements the cube repository shared by the target
// engines, including the historicity feature of Section 6: cubes and
// programs are time-dependent, so every write is a new version stamped
// with its validity instant, and reads can be current or as-of a past
// instant. A CSV import/export layer feeds elementary cubes into the
// system and delivers results out of it.
package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"exlengine/internal/model"
)

// Store is a versioned, concurrency-safe cube repository.
type Store struct {
	mu      sync.RWMutex
	cubes   map[string][]version
	schemas map[string]model.Schema
}

type version struct {
	asOf time.Time
	cube *model.Cube
}

// New returns an empty store.
func New() *Store {
	return &Store{
		cubes:   make(map[string][]version),
		schemas: make(map[string]model.Schema),
	}
}

// Declare registers a cube schema. Re-declaring with identical dimensions
// is a no-op; changing the dimensionality of an existing cube is an error.
func (s *Store) Declare(sch model.Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.schemas[sch.Name]; ok {
		if !old.SameDims(sch) {
			return fmt.Errorf("store: cube %s already declared with different dimensions (%s vs %s)", sch.Name, old, sch)
		}
		return nil
	}
	s.schemas[sch.Name] = sch
	return nil
}

// Schema returns the declared schema of a cube.
func (s *Store) Schema(name string) (model.Schema, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sch, ok := s.schemas[name]
	return sch, ok
}

// Names returns the declared cube names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.schemas))
	for n := range s.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Put stores a new version of the cube, valid from asOf. The cube's
// schema is declared implicitly on first write. Versions must be written
// in non-decreasing asOf order per cube.
func (s *Store) Put(c *model.Cube, asOf time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := c.Schema().Name
	if old, ok := s.schemas[name]; ok {
		if !old.SameDims(c.Schema()) {
			return fmt.Errorf("store: cube %s dimensionality changed", name)
		}
	} else {
		s.schemas[name] = c.Schema()
	}
	vs := s.cubes[name]
	if n := len(vs); n > 0 && vs[n-1].asOf.After(asOf) {
		return fmt.Errorf("store: version for %s at %v is older than the latest (%v)", name, asOf, vs[n-1].asOf)
	}
	s.cubes[name] = append(vs, version{asOf: asOf, cube: c.Clone()})
	return nil
}

// PutAll stores a new version of every cube in the map, all valid from
// asOf, atomically: every cube is validated (schema compatibility and
// version ordering) before any write happens, so a rejected cube leaves
// the store exactly as it was — the snapshot-isolation guarantee the
// dispatcher relies on when a run partially fails.
func (s *Store) PutAll(cubes map[string]*model.Cube, asOf time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(cubes))
	for n := range cubes {
		names = append(names, n)
	}
	sort.Strings(names)
	// Validate everything first.
	for _, name := range names {
		c := cubes[name]
		if c == nil {
			return fmt.Errorf("store: nil cube %s", name)
		}
		if old, ok := s.schemas[name]; ok && !old.SameDims(c.Schema()) {
			return fmt.Errorf("store: cube %s dimensionality changed", name)
		}
		if vs := s.cubes[name]; len(vs) > 0 && vs[len(vs)-1].asOf.After(asOf) {
			return fmt.Errorf("store: version for %s at %v is older than the latest (%v)", name, asOf, vs[len(vs)-1].asOf)
		}
	}
	// Commit.
	for _, name := range names {
		c := cubes[name]
		if _, ok := s.schemas[name]; !ok {
			s.schemas[name] = c.Schema()
		}
		s.cubes[name] = append(s.cubes[name], version{asOf: asOf, cube: c.Clone()})
	}
	return nil
}

// Get returns the current (latest) version of the cube.
func (s *Store) Get(name string) (*model.Cube, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	if len(vs) == 0 {
		return nil, false
	}
	return vs[len(vs)-1].cube.Clone(), true
}

// GetAsOf returns the version of the cube valid at instant t (the newest
// version with asOf <= t).
func (s *Store) GetAsOf(name string, t time.Time) (*model.Cube, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].asOf.After(t) })
	if i == 0 {
		return nil, false
	}
	return vs[i-1].cube.Clone(), true
}

// Versions returns the validity instants of the cube's versions, oldest
// first.
func (s *Store) Versions(name string) []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	out := make([]time.Time, len(vs))
	for i, v := range vs {
		out[i] = v.asOf
	}
	return out
}

// Snapshot returns the current version of every stored cube, keyed by
// name — the source instance handed to the execution engines.
func (s *Store) Snapshot() map[string]*model.Cube {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*model.Cube, len(s.cubes))
	for name, vs := range s.cubes {
		if len(vs) > 0 {
			out[name] = vs[len(vs)-1].cube.Clone()
		}
	}
	return out
}

// WriteCSV exports a cube: a header of dimension names plus the measure,
// then one row per tuple in deterministic order.
func WriteCSV(w io.Writer, c *model.Cube) error {
	cw := csv.NewWriter(w)
	sch := c.Schema()
	header := append(append([]string(nil), sch.DimNames()...), sch.Measure)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, tu := range c.Tuples() {
		rec := make([]string, 0, len(header))
		for _, d := range tu.Dims {
			rec = append(rec, d.String())
		}
		rec = append(rec, strconv.FormatFloat(tu.Measure, 'g', -1, 64))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a cube under the given schema. The header must name the
// schema's dimensions (in order) followed by the measure.
func ReadCSV(r io.Reader, sch model.Schema) (*model.Cube, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: reading CSV header: %w", err)
	}
	want := append(append([]string(nil), sch.DimNames()...), sch.Measure)
	if len(header) != len(want) {
		return nil, fmt.Errorf("store: CSV header %v does not match schema %s", header, sch)
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("store: CSV column %d is %q, want %q", i, h, want[i])
		}
	}
	c := model.NewCube(sch)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return nil, fmt.Errorf("store: reading CSV: %w", err)
		}
		line++
		dims := make([]model.Value, len(sch.Dims))
		for i, d := range sch.Dims {
			v, err := model.ParseValue(rec[i], d.Type)
			if err != nil {
				return nil, fmt.Errorf("store: CSV line %d, column %s: %w", line, d.Name, err)
			}
			dims[i] = v
		}
		mv, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("store: CSV line %d: bad measure %q", line, rec[len(rec)-1])
		}
		if err := c.Put(dims, mv); err != nil {
			return nil, fmt.Errorf("store: CSV line %d: %w", line, err)
		}
	}
}
