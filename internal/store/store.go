// Package store implements the cube repository shared by the target
// engines, including the historicity feature of Section 6: cubes and
// programs are time-dependent, so every write is a new version stamped
// with its validity instant, and reads can be current or as-of a past
// instant. A CSV import/export layer feeds elementary cubes into the
// system and delivers results out of it.
//
// Reads are zero-copy: versions are frozen on write and handed out by
// reference (see Store), and a generation counter versions snapshots.
package store

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"exlengine/internal/model"
)

// ErrNotFound reports a cube (or cube version) that does not exist in the
// store. Fetch and FetchAsOf wrap it with the cube name and, for as-of
// reads, the requested instant, so errors.Is(err, ErrNotFound) works.
var ErrNotFound = errors.New("store: cube not found")

// ErrStaleVersion reports an optimistic-concurrency loss: a write's asOf
// stamp is older than the cube's latest committed version. checkPut wraps
// it with the cube name and both instants, so errors.Is(err,
// ErrStaleVersion) works; the write is retryable with a fresher stamp.
var ErrStaleVersion = errors.New("older than the latest")

// ErrDeltaUnavailable reports that the store cannot reconstruct the
// cube's state at the requested generation, so no sound delta exists and
// the caller must fall back to a full recompute. This happens after an
// equal-asOf overwrite: the replaced version vanishes from the history
// (last write wins), and diffing against an older surviving base could
// silently miss changes the caller's snapshot actually observed.
var ErrDeltaUnavailable = errors.New("store: delta unavailable for requested generation; full recompute required")

// Store is a versioned, concurrency-safe cube repository.
//
// Stored cube versions are frozen (model.Cube.Freeze) at write time, so
// reads are zero-copy: Get, GetAsOf and Snapshot return the stored
// instances by reference instead of deep-cloning them under the lock.
// Callers that need to mutate a returned cube must Clone it first; the
// frozen-cube discipline turns accidental in-place mutation into an
// explicit ErrFrozen failure instead of a silent data race.
type Store struct {
	mu      sync.RWMutex
	cubes   map[string][]version
	schemas map[string]model.Schema
	// gen counts committed writes (Put and PutAll each bump it once), so
	// snapshots can be versioned: two snapshots with equal generation are
	// guaranteed identical.
	gen uint64
	// overwriteGen records, per cube, the commit generation of the most
	// recent equal-asOf overwrite (a version replaced in place by
	// appendVersion). A reader whose snapshot predates that overwrite may
	// have seen the replaced — now vanished — version, so Delta refuses to
	// serve generations older than this watermark.
	overwriteGen map[string]uint64
}

type version struct {
	asOf time.Time
	cube *model.Cube
	// gen is the commit generation that produced this version; versions of
	// a cube carry strictly increasing generations, so "the version visible
	// at generation g" is the newest one with gen <= g.
	gen uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		cubes:        make(map[string][]version),
		schemas:      make(map[string]model.Schema),
		overwriteGen: make(map[string]uint64),
	}
}

// Declare registers a cube schema. Re-declaring with identical dimensions
// is a no-op; changing the dimensionality of an existing cube is an error.
func (s *Store) Declare(sch model.Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.schemas[sch.Name]; ok {
		if !old.SameDims(sch) {
			return fmt.Errorf("store: cube %s already declared with different dimensions (%s vs %s)", sch.Name, old, sch)
		}
		return nil
	}
	s.schemas[sch.Name] = sch
	return nil
}

// Schema returns the declared schema of a cube.
func (s *Store) Schema(name string) (model.Schema, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sch, ok := s.schemas[name]
	return sch, ok
}

// Names returns the declared cube names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.schemas))
	for n := range s.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// frozenCopy returns the cube as an immutable instance suitable for
// storing: an already-frozen cube is shared as-is (it can never change
// again), anything else is cloned and the clone frozen, so the caller
// keeps exclusive ownership of its original.
func frozenCopy(c *model.Cube) *model.Cube {
	if c.Frozen() {
		return c
	}
	return c.Clone().Freeze()
}

// appendVersion adds a frozen version to a cube's history, replacing the
// latest entry when asOf is exactly equal (last write wins) so GetAsOf
// never sees two versions at the same instant; replaced reports whether
// that happened. The caller validated ordering and holds the write lock.
func appendVersion(vs []version, v version) (_ []version, replaced bool) {
	if n := len(vs); n > 0 && vs[n-1].asOf.Equal(v.asOf) {
		vs[n-1] = v
		return vs, true
	}
	return append(vs, v), false
}

// putLocked commits one already-validated cube version under the write
// lock, stamping it with commit generation g and updating the overwrite
// watermark when the write replaced an equal-asOf version.
func (s *Store) putLocked(c *model.Cube, asOf time.Time, g uint64) {
	name := c.Schema().Name
	if _, ok := s.schemas[name]; !ok {
		s.schemas[name] = c.Schema()
	}
	vs, replaced := appendVersion(s.cubes[name], version{asOf: asOf, cube: frozenCopy(c), gen: g})
	s.cubes[name] = vs
	if replaced {
		s.overwriteGen[name] = g
	}
}

// checkPut validates one cube write (schema compatibility and version
// ordering) without applying it. The caller holds at least a read lock.
func (s *Store) checkPut(c *model.Cube, asOf time.Time) error {
	if c == nil {
		return fmt.Errorf("store: nil cube")
	}
	name := c.Schema().Name
	if old, ok := s.schemas[name]; ok && !old.SameDims(c.Schema()) {
		return fmt.Errorf("store: cube %s dimensionality changed", name)
	}
	if vs := s.cubes[name]; len(vs) > 0 && vs[len(vs)-1].asOf.After(asOf) {
		return fmt.Errorf("store: version for %s at %v is %w (%v)", name, asOf, ErrStaleVersion, vs[len(vs)-1].asOf)
	}
	return nil
}

// CheckPut reports whether Put would accept the write, without applying
// it. Durable wrappers use it to validate a commit before appending it to
// a write-ahead log: a record must never reach the log if replaying it
// would fail.
func (s *Store) CheckPut(c *model.Cube, asOf time.Time) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkPut(c, asOf)
}

// CheckPutAll reports whether PutAll would accept the batch, without
// applying it.
func (s *Store) CheckPutAll(cubes map[string]*model.Cube, asOf time.Time) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, name := range sortedNames(cubes) {
		if err := s.checkPut(cubes[name], asOf); err != nil {
			return err
		}
	}
	return nil
}

func sortedNames(cubes map[string]*model.Cube) []string {
	names := make([]string, 0, len(cubes))
	for n := range cubes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Put stores a new version of the cube, valid from asOf. The cube's
// schema is declared implicitly on first write. Versions must be written
// in non-decreasing asOf order per cube; a second write at exactly the
// latest asOf replaces that version (last write wins), keeping Versions
// duplicate-free and GetAsOf unambiguous.
func (s *Store) Put(c *model.Cube, asOf time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkPut(c, asOf); err != nil {
		return err
	}
	s.gen++
	s.putLocked(c, asOf, s.gen)
	return nil
}

// PutAll stores a new version of every cube in the map, all valid from
// asOf, atomically: every cube is validated (schema compatibility and
// version ordering) before any write happens, so a rejected cube leaves
// the store exactly as it was — the snapshot-isolation guarantee the
// dispatcher relies on when a run partially fails.
func (s *Store) PutAll(cubes map[string]*model.Cube, asOf time.Time) error {
	_, err := s.PutAllGen(cubes, asOf)
	return err
}

// PutAllGen is PutAll returning the commit generation the batch was
// stamped with (the store generation after the write). Callers that
// memoize "computed at generation g" need the two read atomically — a
// PutAll followed by Generation() can observe a concurrent writer's
// bump. An empty batch commits nothing and returns the current
// generation.
func (s *Store) PutAllGen(cubes map[string]*model.Cube, asOf time.Time) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := sortedNames(cubes)
	// Validate everything first.
	for _, name := range names {
		if err := s.checkPut(cubes[name], asOf); err != nil {
			return s.gen, err
		}
	}
	if len(names) == 0 {
		return s.gen, nil
	}
	// Commit.
	s.gen++
	for _, name := range names {
		s.putLocked(cubes[name], asOf, s.gen)
	}
	return s.gen, nil
}

// Get returns the current (latest) version of the cube. The returned
// cube is frozen and shared: reading it is free of copies and locks, but
// mutating it requires an explicit Clone.
func (s *Store) Get(name string) (*model.Cube, bool) {
	c, err := s.Fetch(name)
	return c, err == nil
}

// Fetch is Get with a descriptive error: a missing cube yields an error
// wrapping ErrNotFound instead of a bare false.
func (s *Store) Fetch(name string) (*model.Cube, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %s has no stored version", ErrNotFound, name)
	}
	return vs[len(vs)-1].cube, nil
}

// GetAsOf returns the version of the cube valid at instant t (the newest
// version with asOf <= t). The returned cube is frozen and shared.
func (s *Store) GetAsOf(name string, t time.Time) (*model.Cube, bool) {
	c, err := s.FetchAsOf(name, t)
	return c, err == nil
}

// FetchAsOf is GetAsOf with a descriptive error. Asking for an instant
// before the cube's first version — or for a cube that was never stored —
// returns an error wrapping ErrNotFound that distinguishes the two cases.
func (s *Store) FetchAsOf(name string, t time.Time) (*model.Cube, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %s has no stored version", ErrNotFound, name)
	}
	i := sort.Search(len(vs), func(i int) bool { return vs[i].asOf.After(t) })
	if i == 0 {
		return nil, fmt.Errorf("%w: %s has no version at or before %v (first version is %v)",
			ErrNotFound, name, t, vs[0].asOf)
	}
	return vs[i-1].cube, nil
}

// Generation returns the store's write generation: it increases by one
// on every committed Put/PutAll, so equal generations imply identical
// store contents.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Versions returns the validity instants of the cube's versions, oldest
// first. The result is a freshly allocated, explicitly sorted copy:
// callers may retain or mutate it without aliasing the store's internal
// version history, and the ascending order is part of the contract, not
// an artifact of the internal representation.
func (s *Store) Versions(name string) []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	out := make([]time.Time, len(vs))
	for i, v := range vs {
		out[i] = v.asOf
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Version is one entry of a cube's version history: the validity instant
// and the frozen cube stored at it.
type Version struct {
	AsOf time.Time
	Cube *model.Cube
}

// History returns the cube's full version history, oldest first. The
// slice is a copy; the cubes are the store's frozen shared instances
// (zero-copy, like Get). Durable backends use it to serialize complete
// segment snapshots that preserve GetAsOf semantics.
func (s *Store) History(name string) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	out := make([]Version, len(vs))
	for i, v := range vs {
		out[i] = Version{AsOf: v.asOf, Cube: v.cube}
	}
	return out
}

// Schemas returns a copy of the declared-schema catalog, including
// cubes that have no stored version yet.
func (s *Store) Schemas() map[string]model.Schema {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]model.Schema, len(s.schemas))
	for n, sch := range s.schemas {
		out[n] = sch
	}
	return out
}

// Snapshot returns the current version of every stored cube, keyed by
// name — the source instance handed to the execution engines. The map is
// fresh but the cubes are frozen shared references, so a snapshot costs
// O(#cubes) regardless of how many tuples they hold.
func (s *Store) Snapshot() map[string]*model.Cube {
	snap, _ := s.SnapshotVersioned()
	return snap
}

// SnapshotVersioned is Snapshot plus the store generation the snapshot
// was taken at, read atomically under one lock acquisition.
func (s *Store) SnapshotVersioned() (map[string]*model.Cube, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*model.Cube, len(s.cubes))
	for name, vs := range s.cubes {
		if len(vs) > 0 {
			out[name] = vs[len(vs)-1].cube
		}
	}
	return out, s.gen
}

// CubeGenerations returns, per stored cube, the commit generation of its
// latest version — the per-cube slice of the store's write generation.
// A cube whose generation has not moved since a previous read is
// guaranteed unchanged (versions are immutable once frozen).
func (s *Store) CubeGenerations() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(s.cubes))
	for name, vs := range s.cubes {
		if len(vs) > 0 {
			out[name] = vs[len(vs)-1].gen
		}
	}
	return out
}

// SnapshotWithGenerations is SnapshotVersioned plus the per-cube
// generation map, all read atomically under one lock acquisition — the
// view an incremental run pins itself to.
func (s *Store) SnapshotWithGenerations() (map[string]*model.Cube, uint64, map[string]uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := make(map[string]*model.Cube, len(s.cubes))
	gens := make(map[string]uint64, len(s.cubes))
	for name, vs := range s.cubes {
		if len(vs) > 0 {
			snap[name] = vs[len(vs)-1].cube
			gens[name] = vs[len(vs)-1].gen
		}
	}
	return snap, s.gen, gens
}

// Delta returns the tuple-level changes to the cube between the version
// visible at store generation sinceGen and the current version: tuples
// added, changed and deleted, with both endpoint cubes shared by
// reference (zero-copy on the unchanged side).
//
// If the cube is unchanged since sinceGen the delta is empty. If an
// equal-asOf overwrite has replaced a version after sinceGen, the state
// the caller observed is no longer reconstructable and Delta returns
// ErrDeltaUnavailable — the caller must recompute in full. A cube with
// no stored version yields an empty delta between empty cubes.
func (s *Store) Delta(name string, sinceGen uint64) (*model.CubeDelta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.cubes[name]
	if len(vs) == 0 {
		sch, ok := s.schemas[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		empty := model.NewCube(sch).Freeze()
		return &model.CubeDelta{Name: name, Base: empty, Current: empty}, nil
	}
	cur := vs[len(vs)-1]
	if cur.gen <= sinceGen {
		// Unchanged since the caller's snapshot: nothing to propagate. The
		// overwrite watermark is irrelevant here — the caller saw this very
		// version (or an even newer state of the world that still had it).
		return &model.CubeDelta{Name: name, Base: cur.cube, Current: cur.cube}, nil
	}
	if s.overwriteGen[name] > sinceGen {
		return nil, fmt.Errorf("%w (cube %s: overwritten at generation %d, requested %d)",
			ErrDeltaUnavailable, name, s.overwriteGen[name], sinceGen)
	}
	// Newest surviving version with gen <= sinceGen; generations are
	// strictly increasing within a cube's history.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].gen > sinceGen })
	var base *model.Cube
	if i == 0 {
		base = model.NewCube(cur.cube.Schema()).Freeze()
	} else {
		base = vs[i-1].cube
	}
	return model.DiffCubes(name, base, cur.cube), nil
}

// WriteCSV exports a cube: a header of dimension names plus the measure,
// then one row per tuple in deterministic order.
//
// Non-finite measures (NaN, ±Inf) are rejected: a cube is a partial
// function into the reals, undefined points are represented by absent
// tuples rather than sentinel floats, and a NaN that slipped into a cube
// would otherwise round-trip through text ("NaN" parses back) and poison
// later comparisons, where NaN != NaN hides the corruption.
//
// The whole cube is validated before the first byte is written: callers
// stream WriteCSV straight into HTTP response bodies, and a mid-stream
// rejection there would arrive after a 200 status and half a body — a
// torn response the client cannot distinguish from success. Validation
// failure must happen while the caller can still choose an error path.
func WriteCSV(w io.Writer, c *model.Cube) error {
	sch := c.Schema()
	tuples := c.Tuples()
	for _, tu := range tuples {
		if math.IsNaN(tu.Measure) || math.IsInf(tu.Measure, 0) {
			return fmt.Errorf("store: cube %s has non-finite measure %v at %v; undefined points must be absent tuples, not NaN/Inf",
				sch.Name, tu.Measure, tu.Dims)
		}
	}
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), sch.DimNames()...), sch.Measure)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, tu := range tuples {
		rec := make([]string, 0, len(header))
		for _, d := range tu.Dims {
			rec = append(rec, d.String())
		}
		rec = append(rec, strconv.FormatFloat(tu.Measure, 'g', -1, 64))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a cube under the given schema. The header must name the
// schema's dimensions (in order) followed by the measure.
func ReadCSV(r io.Reader, sch model.Schema) (*model.Cube, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: reading CSV header: %w", err)
	}
	want := append(append([]string(nil), sch.DimNames()...), sch.Measure)
	if len(header) != len(want) {
		return nil, fmt.Errorf("store: CSV header %v does not match schema %s", header, sch)
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("store: CSV column %d is %q, want %q", i, h, want[i])
		}
	}
	c := model.NewCube(sch)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return nil, fmt.Errorf("store: reading CSV: %w", err)
		}
		line++
		dims := make([]model.Value, len(sch.Dims))
		for i, d := range sch.Dims {
			v, err := model.ParseValue(rec[i], d.Type)
			if err != nil {
				return nil, fmt.Errorf("store: CSV line %d, column %s: %w", line, d.Name, err)
			}
			dims[i] = v
		}
		mv, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("store: CSV line %d: bad measure %q", line, rec[len(rec)-1])
		}
		// Mirror WriteCSV: "NaN"/"Inf" parse as floats but are not legal
		// measures, so reject them at the boundary instead of letting them
		// contaminate the cube.
		if math.IsNaN(mv) || math.IsInf(mv, 0) {
			return nil, fmt.Errorf("store: CSV line %d: non-finite measure %q; undefined points must be absent rows, not NaN/Inf", line, rec[len(rec)-1])
		}
		if err := c.Put(dims, mv); err != nil {
			return nil, fmt.Errorf("store: CSV line %d: %w", line, err)
		}
	}
}
