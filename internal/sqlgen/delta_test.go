package sqlgen

import (
	"errors"
	"testing"

	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/sqlengine"
)

func compileDelta(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quarterCube(t *testing.T, name string, vals map[int]float64) *model.Cube {
	t.Helper()
	c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "q", Type: model.TQuarter}}, "v"))
	start := model.NewQuarterly(2020, 1)
	for off, v := range vals {
		if err := c.Put([]model.Value{model.Per(start.Shift(int64(off)))}, v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

const chainProgram = `
cube A(q: quarter) measure v

B := A * 2
C := B + A
D := shift(C, 1)
`

func runFull(t *testing.T, m *mapping.Mapping, a *model.Cube) map[string]*model.Cube {
	t.Helper()
	db := sqlengine.NewDB()
	if err := db.LoadCube(a); err != nil {
		t.Fatal(err)
	}
	script, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Execute(script, db); err != nil {
		t.Fatal(err)
	}
	out := map[string]*model.Cube{}
	for _, rel := range m.Derived {
		c, err := db.ExtractCube(m.Schemas[rel])
		if err != nil {
			t.Fatal(err)
		}
		out[rel] = c
	}
	return out
}

// TestTranslateDeltaPureInsert maintains a tuple-level chain with
// INSERT-delta SQL and requires the result to match a full refresh.
func TestTranslateDeltaPureInsert(t *testing.T) {
	m := compileDelta(t, chainProgram)

	base := quarterCube(t, "A", map[int]float64{0: 1, 1: 2, 2: 3})
	cur := base.Clone()
	start := model.NewQuarterly(2020, 1)
	if err := cur.Put([]model.Value{model.Per(start.Shift(3))}, 5); err != nil {
		t.Fatal(err)
	}
	if err := cur.Put([]model.Value{model.Per(start.Shift(4))}, 8); err != nil {
		t.Fatal(err)
	}

	baseOut := runFull(t, m, base)
	want := runFull(t, m, cur)

	delta := model.DiffCubes("A", base, cur)
	if !delta.PureInsert() {
		t.Fatalf("expected pure-insert delta")
	}

	script, affected, err := TranslateDelta(m, map[string]bool{"A": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) == 0 {
		t.Fatalf("no affected targets")
	}

	db := sqlengine.NewDB()
	if err := db.LoadCube(cur); err != nil { // current elementary
		t.Fatal(err)
	}
	for _, rel := range m.Derived { // previous outputs
		if err := db.LoadCube(baseOut[rel]); err != nil {
			t.Fatal(err)
		}
	}
	// Inserted tuples into the delta side table (loading creates it; the
	// script's DDL only covers the derived delta tables).
	dc, err := DeltaCube(m.Schemas["A"], delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadCube(dc); err != nil {
		t.Fatal(err)
	}

	if err := Execute(script, db); err != nil {
		t.Fatal(err)
	}
	for _, rel := range m.Derived {
		got, err := db.ExtractCube(m.Schemas[rel])
		if err != nil {
			t.Fatal(err)
		}
		if d := model.DiffCubes(rel, want[rel], got); !d.Empty() {
			t.Errorf("cube %s: delta maintenance diverges from full refresh (%d diffs)", rel, d.Size())
		}
	}
}

// TestTranslateDeltaRejectsAggregation pins the monotonicity condition:
// an aggregation downstream of the changed relation cannot be maintained
// by insertion.
func TestTranslateDeltaRejectsAggregation(t *testing.T) {
	m := compileDelta(t, `
cube A(q: quarter, r: string) measure v

S := sum(A, group by q)
`)
	_, _, err := TranslateDelta(m, map[string]bool{"A": true})
	if !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("want ErrNotMonotone, got %v", err)
	}
}

// TestTranslateDeltaUntouchedTgdsEmitNothing: tgds not reachable from
// the change must not appear in the script.
func TestTranslateDeltaUntouchedTgdsEmitNothing(t *testing.T) {
	m := compileDelta(t, `
cube A(q: quarter) measure v
cube Z(q: quarter) measure w

B := A * 2
Y := Z + 1
`)
	script, affected, err := TranslateDelta(m, map[string]bool{"A": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "B" {
		t.Fatalf("affected = %v, want [B]", affected)
	}
	for _, st := range script.Steps {
		if st.Target == "Y" || st.Target == DeltaTable("Y") {
			t.Errorf("untouched target Y appears in delta script: %s", st.SQL)
		}
	}
}
