package sqlgen

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/sqlengine"
	"exlengine/internal/workload"
)

func compileNormalized(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.GenerateNormalized(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAuxAsViews renders a normalized mapping with auxiliary relations as
// views and verifies the execution still matches the chase: the Section 6
// "temporary cubes as relational views" variant.
func TestAuxAsViews(t *testing.T) {
	m := compileNormalized(t, workload.GDPProgram)
	if len(m.AuxRelations()) == 0 {
		t.Fatal("normalized GDP mapping should have auxiliaries")
	}
	script, err := TranslateWith(m, Options{AuxAsViews: true})
	if err != nil {
		t.Fatal(err)
	}
	text := script.String()
	if !strings.Contains(text, "CREATE VIEW _PCHNG_") {
		t.Errorf("no view DDL for auxiliaries:\n%s", text)
	}
	// No CREATE TABLE for auxiliaries.
	for _, aux := range m.AuxRelations() {
		if strings.Contains(text, "CREATE TABLE "+aux+" ") {
			t.Errorf("aux %s still materialized:\n%s", aux, text)
		}
	}

	data := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 2})
	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	db := sqlengine.NewDB()
	for _, name := range m.Elementary {
		if err := db.LoadCube(data[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := Execute(script, db); err != nil {
		t.Fatal(err)
	}
	for _, rel := range m.Derived {
		got, err := db.ExtractCube(m.Schemas[rel])
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		if !got.Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs under view-based translation", rel)
		}
	}
	// The auxiliary relations exist as views, not tables.
	if _, ok := db.Table("_pchng_1"); ok {
		t.Error("auxiliary was materialized as a table")
	}
}

// TestAuxViewsBlackBoxOperand: a black-box operand defined as a view flows
// through the tabular function.
func TestAuxViewsBlackBoxOperand(t *testing.T) {
	m := compileNormalized(t, "cube A(t: year) measure v\nB := stl_t(A * 2)")
	script, err := TranslateWith(m, Options{AuxAsViews: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script.String(), "CREATE VIEW _B_1") {
		t.Fatalf("operand not a view:\n%s", script)
	}
	data := workload.Data{"A": workload.Series(workload.SeriesConfig{Name: "A", Freq: 4, N: 12, Level: 10, Trend: 1})}
	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	db := sqlengine.NewDB()
	if err := db.LoadCube(data["A"]); err != nil {
		t.Fatal(err)
	}
	if err := Execute(script, db); err != nil {
		t.Fatal(err)
	}
	got, err := db.ExtractCube(m.Schemas["B"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref["B"], 1e-9) {
		t.Error("view-fed black box differs from chase")
	}
}
