package sqlgen

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/sqlengine"
	"exlengine/internal/workload"
)

func compile(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateTableSQL(t *testing.T) {
	sch := model.NewSchema("PDR",
		[]model.Dim{{Name: "d", Type: model.TDay}, {Name: "r", Type: model.TString}}, "p")
	got := CreateTableSQL(sch)
	want := "CREATE TABLE PDR (d DAY, r VARCHAR, p DOUBLE)"
	if got != want {
		t.Errorf("CreateTableSQL = %q, want %q", got, want)
	}
}

func TestTgdSQLShapes(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	script, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Steps) != 5 || len(script.DDL) != 5 {
		t.Fatalf("script = %+v", script)
	}

	sqlFor := func(target string) string {
		for _, s := range script.Steps {
			if s.Target == target {
				return s.SQL
			}
		}
		t.Fatalf("no step for %s", target)
		return ""
	}

	// Tgd (1): aggregation with a dimension function.
	pqr := sqlFor("PQR")
	for _, frag := range []string{"INSERT INTO PQR(q, r, p)", "QUARTER(C1.d)", "AVG(C1.p)", "GROUP BY QUARTER(C1.d), C1.r"} {
		if !strings.Contains(pqr, frag) {
			t.Errorf("PQR SQL missing %q:\n%s", frag, pqr)
		}
	}

	// Tgd (2): join generated from the repeated variables.
	rgdp := sqlFor("RGDP")
	for _, frag := range []string{"FROM RGDPPC C1, PQR C2", "C2.q = C1.q", "C2.r = C1.r", "(C1.g * C2.p)"} {
		if !strings.Contains(rgdp, frag) {
			t.Errorf("RGDP SQL missing %q:\n%s", frag, rgdp)
		}
	}

	// Tgd (3): plain aggregation.
	gdp := sqlFor("GDP")
	for _, frag := range []string{"SUM(C1.g)", "GROUP BY C1.q"} {
		if !strings.Contains(gdp, frag) {
			t.Errorf("GDP SQL missing %q:\n%s", frag, gdp)
		}
	}

	// Tgd (4): tabular function, as in the paper's Section 5.1.
	gdpt := sqlFor("GDPT")
	if !strings.Contains(gdpt, "FROM STL_T(GDP)") {
		t.Errorf("GDPT SQL missing tabular function:\n%s", gdpt)
	}

	// Tgd (5): self-join with period arithmetic.
	pchng := sqlFor("PCHNG")
	for _, frag := range []string{"FROM GDPT C1, GDPT C2", "C2.q = C1.q - 1", "* 100)", "/ C1.g"} {
		if !strings.Contains(pchng, frag) {
			t.Errorf("PCHNG SQL missing %q:\n%s", frag, pchng)
		}
	}
}

func TestBlackBoxWithParams(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := movavg(A, 3)")
	sql, err := TgdSQL(m.TgdFor("B"), m.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM MOVAVG(A, 3)") {
		t.Errorf("movavg SQL = %s", sql)
	}
}

// TestCountGuard pins the IS NOT NULL guard on count translations: the
// chase aggregates only defined measure points and emits no tuple for a
// group that is undefined everywhere, so the SQL translation must keep
// such rows out of COUNT's input entirely. Other aggregates are
// NULL-strict and need no guard.
func TestCountGuard(t *testing.T) {
	m := compile(t, "cube A(d: day) measure v\nB := count(A, group by quarter(d) as q)")
	sql, err := TgdSQL(m.TgdFor("B"), m.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "C1.v IS NOT NULL") {
		t.Errorf("count SQL missing measure guard:\n%s", sql)
	}
	if !strings.Contains(sql, "COUNT(C1.v)") {
		t.Errorf("count SQL missing aggregate:\n%s", sql)
	}

	m = compile(t, "cube A(d: day) measure v\nB := sum(A, group by quarter(d) as q)")
	sql, err = TgdSQL(m.TgdFor("B"), m.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "IS NOT NULL") {
		t.Errorf("sum SQL has a spurious guard:\n%s", sql)
	}
}

// TestSQLMatchesChase is the cross-engine equivalence check: executing the
// generated SQL on the in-memory engine produces exactly the chase solution
// for every derived cube, on all three example programs.
func TestSQLMatchesChase(t *testing.T) {
	cases := []struct {
		name string
		prog string
		data workload.Data
	}{
		{"gdp", workload.GDPProgram, workload.GDPSource(workload.GDPConfig{Days: 400, Regions: 4})},
		{"inflation", workload.InflationProgram, workload.InflationSource(6, 30, 2)},
		{"supervision", workload.SupervisionProgram, workload.SupervisionSource(8, 16, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := compile(t, tc.prog)

			ref, err := chase.New(m).Solve(chase.Instance(tc.data))
			if err != nil {
				t.Fatal(err)
			}

			db := sqlengine.NewDB()
			for _, name := range m.Elementary {
				if err := db.LoadCube(tc.data[name]); err != nil {
					t.Fatal(err)
				}
			}
			script, err := Translate(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := Execute(script, db); err != nil {
				t.Fatal(err)
			}

			for _, rel := range m.Derived {
				got, err := db.ExtractCube(m.Schemas[rel])
				if err != nil {
					t.Fatalf("%s: %v", rel, err)
				}
				if !got.Equal(ref[rel], 1e-6) {
					t.Errorf("%s differs between SQL and chase:\n%s",
						rel, strings.Join(got.Diff(ref[rel], 1e-6, 5), "\n"))
				}
			}
		})
	}
}

func TestSQLNormalizedMatchesChase(t *testing.T) {
	prog, err := exl.Parse(workload.GDPProgram)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.GenerateNormalized(a)
	if err != nil {
		t.Fatal(err)
	}
	data := workload.GDPSource(workload.GDPConfig{Days: 150, Regions: 2})

	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	db := sqlengine.NewDB()
	for _, name := range m.Elementary {
		if err := db.LoadCube(data[name]); err != nil {
			t.Fatal(err)
		}
	}
	script, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Execute(script, db); err != nil {
		t.Fatal(err)
	}
	for _, rel := range m.Derived {
		got, err := db.ExtractCube(m.Schemas[rel])
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs (normalized SQL vs chase)", rel)
		}
	}
}

func TestScriptString(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := A * 2")
	script, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	s := script.String()
	if !strings.Contains(s, "CREATE TABLE B") || !strings.Contains(s, "-- t1 -> B") {
		t.Errorf("script:\n%s", s)
	}
}
