// Package sqlgen translates executable schema mappings into SQL (Section
// 5.1): tuple-level tgds become INSERT … SELECT statements whose join
// conditions are generated from the repeated variables of the lhs (shifted
// terms become arithmetic conditions such as C2.q = C1.q - 1), aggregation
// tgds add GROUP BY clauses, and black-box tgds select from tabular
// functions (INSERT INTO GDPT(q, g) SELECT t, v FROM STL_T(GDP)).
//
// The emitted dialect is exactly the one implemented by
// internal/sqlengine, so every generated script can be executed and
// validated against the chase.
package sqlgen

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/sqlengine"
)

// Script is a full SQL translation of a mapping: DDL for every derived and
// auxiliary table, plus one INSERT step per tgd, in stratification order.
type Script struct {
	DDL   []string
	Steps []Step
}

// Step is the SQL translation of one tgd.
type Step struct {
	TgdID  string
	Target string
	SQL    string
}

// String renders the whole script.
func (s *Script) String() string {
	var b strings.Builder
	for _, d := range s.DDL {
		b.WriteString(d)
		b.WriteString(";\n")
	}
	for _, st := range s.Steps {
		fmt.Fprintf(&b, "-- %s -> %s\n%s;\n", st.TgdID, st.Target, st.SQL)
	}
	return b.String()
}

// CreateTableSQL renders the DDL for a cube schema.
func CreateTableSQL(sch model.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", sch.Name)
	for i, d := range sch.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", strings.ToLower(d.Name), sqlengine.ColumnForDim(d.Type))
	}
	if len(sch.Dims) > 0 {
		b.WriteString(", ")
	}
	fmt.Fprintf(&b, "%s DOUBLE)", strings.ToLower(sch.Measure))
	return b.String()
}

// Options configures the translation.
type Options struct {
	// AuxAsViews renders auxiliary relations (the temporary cubes of
	// normalized statements) as relational views instead of materialized
	// tables — the paper's Section 6 note that "intermediate cubes can be
	// irrelevant" and the approach "can be easily reformulated in terms of
	// creation of relational views".
	AuxAsViews bool
}

// Translate renders the whole mapping as a SQL script: CREATE TABLE for
// every non-elementary relation and one INSERT per tgd in order.
func Translate(m *mapping.Mapping) (*Script, error) {
	return TranslateWith(m, Options{})
}

// TranslateWith is Translate with explicit options.
func TranslateWith(m *mapping.Mapping, opts Options) (*Script, error) {
	s := &Script{}
	asView := func(t *mapping.Tgd) bool { return opts.AuxAsViews && t.Auxiliary }
	for _, t := range m.Tgds {
		if asView(t) {
			continue // the view DDL carries its own defining query
		}
		s.DDL = append(s.DDL, CreateTableSQL(m.Schemas[t.Target()]))
	}
	for _, t := range m.Tgds {
		if asView(t) {
			sql, err := TgdViewSQL(t, m.Schemas)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: tgd %s: %w", t.ID, err)
			}
			s.Steps = append(s.Steps, Step{TgdID: t.ID, Target: t.Target(), SQL: sql})
			continue
		}
		sql, err := TgdSQL(t, m.Schemas)
		if err != nil {
			return nil, fmt.Errorf("sqlgen: tgd %s: %w", t.ID, err)
		}
		s.Steps = append(s.Steps, Step{TgdID: t.ID, Target: t.Target(), SQL: sql})
	}
	return s, nil
}

// Execute creates the derived tables and runs every step of the
// translation against the database. Elementary tables must have been
// loaded beforehand (DB.LoadCube).
func Execute(s *Script, db *sqlengine.DB) error {
	return ExecuteContext(context.Background(), s, db)
}

// ExecuteContext is Execute under a context: cancellation aborts the
// script between statements, and a tracer carried by the context records
// one span per DDL batch and per INSERT step.
func ExecuteContext(ctx context.Context, s *Script, db *sqlengine.DB) error {
	if len(s.DDL) > 0 {
		_, span := obs.StartSpan(ctx, "sql.ddl", obs.Int("statements", len(s.DDL)))
		for _, d := range s.DDL {
			if err := db.Exec(d); err != nil {
				span.EndErr(err)
				return err
			}
		}
		span.End()
	}
	for _, st := range s.Steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, span := obs.StartSpan(ctx, "sql.stmt",
			obs.String("tgd", st.TgdID), obs.String("cube", st.Target))
		err := db.Exec(st.SQL)
		span.EndErr(err)
		if err != nil {
			return fmt.Errorf("sqlgen: executing %s: %w", st.TgdID, err)
		}
	}
	return nil
}

// binding locates a tgd variable in the FROM clause: a SQL expression over
// an atom alias.
type binding string

// TgdSQL translates one tgd into an INSERT statement.
func TgdSQL(t *mapping.Tgd, schemas map[string]model.Schema) (string, error) {
	body, cols, err := tgdSelect(t, schemas)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("INSERT INTO %s(%s)\n%s", t.Rhs.Rel, strings.Join(cols, ", "), body), nil
}

// TgdViewSQL translates one tgd into a CREATE VIEW statement, the paper's
// Section 6 variant where temporary cubes are not stored back but defined
// as relational views evaluated on demand.
func TgdViewSQL(t *mapping.Tgd, schemas map[string]model.Schema) (string, error) {
	body, _, err := tgdSelect(t, schemas)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("CREATE VIEW %s AS\n%s", t.Rhs.Rel, body), nil
}

// tgdSelect builds the SELECT body computing a tgd's target relation,
// along with the target column names in SELECT order.
func tgdSelect(t *mapping.Tgd, schemas map[string]model.Schema) (string, []string, error) {
	switch t.Kind {
	case mapping.BlackBox:
		return blackBoxSelect(t, schemas)
	case mapping.PadVector:
		return "", nil, fmt.Errorf("padded vectorial operator %s is not translatable: the emitted SQL dialect has no outer joins", t.PadOp)
	case mapping.TupleLevel, mapping.Aggregation, mapping.Copy:
		return joinSelect(t, schemas)
	default:
		return "", nil, fmt.Errorf("unsupported tgd kind %s", t.Kind)
	}
}

func blackBoxSelect(t *mapping.Tgd, schemas map[string]model.Schema) (string, []string, error) {
	in, ok := schemas[t.Lhs[0].Rel]
	if !ok {
		return "", nil, fmt.Errorf("no schema for %s", t.Lhs[0].Rel)
	}
	out, ok := schemas[t.Rhs.Rel]
	if !ok {
		return "", nil, fmt.Errorf("no schema for %s", t.Rhs.Rel)
	}
	if len(in.Dims) != 1 || len(out.Dims) != 1 {
		return "", nil, fmt.Errorf("black box %s needs time-series operand and result", t.BB)
	}
	args := t.Lhs[0].Rel
	for _, p := range t.BBParams {
		args += ", " + formatNum(p)
	}
	cols := []string{strings.ToLower(out.Dims[0].Name), strings.ToLower(out.Measure)}
	body := fmt.Sprintf("SELECT %s AS %s, %s AS %s\nFROM %s(%s)",
		strings.ToLower(in.Dims[0].Name), cols[0],
		strings.ToLower(in.Measure), cols[1],
		strings.ToUpper(t.BB), args)
	return body, cols, nil
}

func joinSelect(t *mapping.Tgd, schemas map[string]model.Schema) (string, []string, error) {
	return joinSelectTables(t, schemas, nil)
}

// joinSelectTables is joinSelect with an optional per-atom table
// override: tableFor(i, rel) names the table atom i reads from (delta
// translation substitutes rel__delta for one atom at a time). A nil
// tableFor reads every atom from its relation's own table.
func joinSelectTables(t *mapping.Tgd, schemas map[string]model.Schema, tableFor func(i int, rel string) string) (string, []string, error) {
	out, ok := schemas[t.Rhs.Rel]
	if !ok {
		return "", nil, fmt.Errorf("no schema for %s", t.Rhs.Rel)
	}

	vars := make(map[string]binding)
	var from []string
	var where []string

	for i, atom := range t.Lhs {
		alias := fmt.Sprintf("C%d", i+1)
		sch, ok := schemas[atom.Rel]
		if !ok {
			return "", nil, fmt.Errorf("no schema for %s", atom.Rel)
		}
		table := atom.Rel
		if tableFor != nil {
			table = tableFor(i, atom.Rel)
		}
		from = append(from, fmt.Sprintf("%s %s", table, alias))
		for j, d := range atom.Dims {
			col := fmt.Sprintf("%s.%s", alias, strings.ToLower(sch.Dims[j].Name))
			switch {
			case d.Const != nil:
				where = append(where, fmt.Sprintf("%s = %s", col, sqlLiteral(*d.Const)))
			case d.Func != "":
				return "", nil, fmt.Errorf("dimension function %s in lhs is not translatable", d.Func)
			default:
				if prev, bound := vars[d.Var]; bound {
					// col holds Var+Shift; the variable is already bound.
					where = append(where, fmt.Sprintf("%s = %s", col, shiftExpr(string(prev), d.Shift)))
				} else {
					// First occurrence: Var = col - Shift.
					vars[d.Var] = binding(shiftExpr(col, -d.Shift))
				}
			}
		}
		if atom.MVar != "" {
			vars[atom.MVar] = binding(fmt.Sprintf("%s.%s", alias, strings.ToLower(sch.Measure)))
		}
	}

	// Output dimension expressions.
	var selectList, insertCols, groupBy []string
	for j, d := range t.Rhs.Dims {
		colName := strings.ToLower(out.Dims[j].Name)
		insertCols = append(insertCols, colName)
		expr, err := dimTermSQL(d, vars)
		if err != nil {
			return "", nil, err
		}
		selectList = append(selectList, fmt.Sprintf("%s AS %s", expr, colName))
		groupBy = append(groupBy, expr)
	}
	insertCols = append(insertCols, strings.ToLower(out.Measure))

	measure, err := mtermSQL(t.Measure, vars)
	if err != nil {
		return "", nil, err
	}
	if t.Kind == mapping.Aggregation {
		if strings.EqualFold(t.Agg, "count") {
			// The chase aggregates the bag of *defined* measure points and
			// emits no output tuple for an all-undefined group. SQL COUNT
			// would instead report 0 (and NULL-strict expressions would
			// silently shrink other aggregates' bags to match), so guard
			// the group input: rows whose measure term is undefined never
			// enter a group, and empty groups never exist.
			where = append(where, fmt.Sprintf("%s IS NOT NULL", measure))
			if len(groupBy) == 0 {
				// A dimensionless count would otherwise be a global
				// aggregate, whose synthesized empty group answers 0 where
				// the chase emits nothing. Grouping by a constant keeps
				// exactly one group when qualifying rows exist and none
				// otherwise. Every other aggregate is NULL over an empty
				// global group and the NULL row is dropped, so only COUNT
				// needs this.
				groupBy = append(groupBy, "0")
			}
		}
		measure = fmt.Sprintf("%s(%s)", strings.ToUpper(t.Agg), measure)
	}
	selectList = append(selectList, fmt.Sprintf("%s AS %s", measure, strings.ToLower(out.Measure)))

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s\nFROM %s",
		strings.Join(selectList, ", "), strings.Join(from, ", "))
	if len(where) > 0 {
		fmt.Fprintf(&b, "\nWHERE %s", strings.Join(where, " AND "))
	}
	if t.Kind == mapping.Aggregation && len(groupBy) > 0 {
		fmt.Fprintf(&b, "\nGROUP BY %s", strings.Join(groupBy, ", "))
	}
	return b.String(), insertCols, nil
}

func dimTermSQL(d mapping.DimTerm, vars map[string]binding) (string, error) {
	if d.Const != nil {
		return sqlLiteral(*d.Const), nil
	}
	bnd, ok := vars[d.Var]
	if !ok {
		return "", fmt.Errorf("unbound variable %s", d.Var)
	}
	expr := string(bnd)
	if d.Func != "" {
		return fmt.Sprintf("%s(%s)", strings.ToUpper(d.Func), expr), nil
	}
	return shiftExpr(expr, d.Shift), nil
}

func mtermSQL(m *mapping.MTerm, vars map[string]binding) (string, error) {
	switch m.Kind {
	case mapping.MConst:
		return formatNum(m.Val), nil
	case mapping.MVar:
		bnd, ok := vars[m.Var]
		if !ok {
			return "", fmt.Errorf("unbound measure variable %s", m.Var)
		}
		return string(bnd), nil
	case mapping.MApply:
		args := make([]string, 0, len(m.Args)+len(m.Params))
		for _, a := range m.Args {
			s, err := mtermSQL(a, vars)
			if err != nil {
				return "", err
			}
			args = append(args, s)
		}
		for _, p := range m.Params {
			args = append(args, formatNum(p))
		}
		switch m.Op {
		case "add", "sub", "mul", "div":
			sym := map[string]string{"add": "+", "sub": "-", "mul": "*", "div": "/"}[m.Op]
			return fmt.Sprintf("(%s %s %s)", args[0], sym, args[1]), nil
		case "neg":
			return fmt.Sprintf("(-%s)", args[0]), nil
		default:
			return fmt.Sprintf("%s(%s)", strings.ToUpper(m.Op), strings.Join(args, ", ")), nil
		}
	default:
		return "", fmt.Errorf("unknown measure term")
	}
}

func shiftExpr(expr string, shift int64) string {
	switch {
	case shift > 0:
		return fmt.Sprintf("%s + %d", expr, shift)
	case shift < 0:
		return fmt.Sprintf("%s - %d", expr, -shift)
	default:
		return expr
	}
}

func sqlLiteral(v model.Value) string {
	switch v.Kind() {
	case model.KindString, model.KindPeriod:
		return "'" + strings.ReplaceAll(v.String(), "'", "''") + "'"
	default:
		return v.String()
	}
}

func formatNum(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
