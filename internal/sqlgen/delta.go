// Delta translation: INSERT-delta maintenance scripts for monotone
// mappings. When every tgd reachable from the changed relations is
// tuple-level (no aggregation, black box or padded operator) and the
// input deltas are pure insertions, the new output tuples are exactly
// the bindings that use at least one inserted tuple — the semi-naive
// rule ΔT = ⋃_i (R1 ⋈ … ⋈ ΔRi ⋈ … ⋈ Rn). Each such join renders as an
// ordinary INSERT … SELECT against the already-loaded tables, with atom
// i reading from the rel__delta side table; derived deltas cascade so a
// downstream tgd joins against its operand's delta table.
//
// Non-monotone shapes — a changed aggregation would need its groups
// rebuilt, a deletion would need retraction — are reported with
// ErrNotMonotone, and the caller falls back to a full refresh.
package sqlgen

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// ErrNotMonotone reports that the mapping cannot be maintained by
// INSERT-delta SQL: a tgd affected by the changed relations is not
// tuple-level, so inserted input tuples do not simply become inserted
// output tuples.
var ErrNotMonotone = errors.New("sqlgen: mapping is not monotone over the changed relations; full refresh required")

// DeltaTable names the side table holding a relation's inserted tuples.
func DeltaTable(rel string) string { return rel + "__delta" }

// TranslateDelta renders the INSERT-delta maintenance script for a
// mapping given the set of changed source relations. The caller must
// load, before executing the script: the current (post-insert) version
// of every elementary relation, the previous version of every derived
// and auxiliary relation, and the inserted tuples of every changed
// relation into a DeltaTable(rel) table (DeltaCube builds it; loading
// creates the table, so the script's DDL covers only the derived delta
// tables it introduces itself). After execution the tables of affected
// targets hold the full new output. Affected reports which targets the
// script maintains (everything else is untouched and current).
func TranslateDelta(m *mapping.Mapping, changed map[string]bool) (*Script, []string, error) {
	s := &Script{}
	dirty := make(map[string]bool, len(changed))
	for _, rel := range sortedSet(changed) {
		if !changed[rel] {
			continue
		}
		if _, ok := m.Schemas[rel]; !ok {
			return nil, nil, fmt.Errorf("sqlgen: no schema for changed relation %s", rel)
		}
		dirty[rel] = true
	}

	var affected []string
	for _, t := range m.Tgds {
		var changedAtoms []int
		for i, a := range t.Lhs {
			if dirty[a.Rel] {
				changedAtoms = append(changedAtoms, i)
			}
		}
		if len(changedAtoms) == 0 {
			continue
		}
		if t.Kind != mapping.TupleLevel && t.Kind != mapping.Copy {
			return nil, nil, fmt.Errorf("%w (tgd %s is %s)", ErrNotMonotone, t.ID, t.Kind)
		}
		target := t.Target()
		sch, ok := m.Schemas[target]
		if !ok {
			return nil, nil, fmt.Errorf("sqlgen: no schema for %s", target)
		}
		s.DDL = append(s.DDL, CreateTableSQL(renamed(sch, DeltaTable(target))))

		// One delta join per changed atom position. A binding that uses
		// inserted tuples in several positions is emitted once per such
		// position; the rows are identical (the binding determines the
		// output tuple), so the duplicates collapse at cube extraction.
		var cols []string
		for _, ci := range changedAtoms {
			ci := ci
			body, insertCols, err := joinSelectTables(t, m.Schemas, func(i int, rel string) string {
				if i == ci {
					return DeltaTable(rel)
				}
				return rel
			})
			if err != nil {
				return nil, nil, fmt.Errorf("sqlgen: tgd %s: %w", t.ID, err)
			}
			cols = insertCols
			s.Steps = append(s.Steps, Step{
				TgdID:  t.ID,
				Target: DeltaTable(target),
				SQL:    fmt.Sprintf("INSERT INTO %s(%s)\n%s", DeltaTable(target), strings.Join(insertCols, ", "), body),
			})
		}
		// Fold the delta into the target so later tgds (and the final
		// extraction) see the full new relation.
		colList := strings.Join(cols, ", ")
		s.Steps = append(s.Steps, Step{
			TgdID:  t.ID,
			Target: target,
			SQL: fmt.Sprintf("INSERT INTO %s(%s)\nSELECT %s\nFROM %s",
				target, colList, colList, DeltaTable(target)),
		})
		dirty[target] = true
		affected = append(affected, target)
	}
	return s, affected, nil
}

// DeltaCube materializes a pure-insert delta as a cube named
// DeltaTable(sch.Name) under the relation's schema, ready to be loaded
// as the script's delta side table.
func DeltaCube(sch model.Schema, d *model.CubeDelta) (*model.Cube, error) {
	c := model.NewCube(renamed(sch, DeltaTable(sch.Name)))
	for _, tu := range d.Added {
		if err := c.Put(tu.Dims, tu.Measure); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func renamed(sch model.Schema, name string) model.Schema {
	sch.Name = name
	return sch
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
