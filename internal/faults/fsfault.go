package faults

import (
	"errors"
	"fmt"
	"sync"

	"exlengine/internal/store/durable"
)

// Filesystem fault injection for the durable store: FaultFS wraps any
// durable.FS and fires scripted disk faults — short writes, fsync
// failures, and crash-at-offset truncation — deterministically, so
// crash-recovery tests can sweep every byte offset of a WAL and assert
// that the reopened store is always a prefix of the committed
// generations.

// Injected fault sentinels. The durable store wraps them in typed
// exlerr errors (class Fatal); errors.Is reaches them through the wrap.
var (
	// ErrInjectedWrite is returned by a scripted short write.
	ErrInjectedWrite = errors.New("faults: injected short write")
	// ErrInjectedSync is returned by a scripted fsync failure.
	ErrInjectedSync = errors.New("faults: injected fsync error")
	// ErrCrashed is returned by every filesystem operation after the
	// crash point: the simulated machine is off.
	ErrCrashed = errors.New("faults: filesystem crashed (simulated power loss)")
)

// FaultFS wraps a durable.FS with scripted disk faults. The zero
// configuration injects nothing and is transparent.
type FaultFS struct {
	inner durable.FS

	mu sync.Mutex
	// writesSeen counts Write calls across all files; shortWriteAt
	// makes the Nth (1-based) write short.
	writesSeen   int64
	shortWriteAt int64
	shortKeep    int // bytes the short write still persists
	// syncsSeen counts Sync calls; failSyncAt fails the Nth (1-based).
	syncsSeen  int64
	failSyncAt int64
	// budget is the crash point: total bytes that reach "disk" across
	// all writes before the machine dies (-1: no crash). Bytes beyond
	// the budget are discarded — the torn tail a real power loss leaves.
	budget  int64
	crashed bool
	// bytesSeen totals the bytes admitted to disk; crash sweeps use it
	// to size their budget range.
	bytesSeen int64
}

// NewFaultFS wraps inner with no faults scripted.
func NewFaultFS(inner durable.FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1, shortWriteAt: -1, failSyncAt: -1}
}

// ShortWriteAt scripts the nth (1-based) Write call to persist only
// keep bytes and return ErrInjectedWrite.
func (f *FaultFS) ShortWriteAt(n int64, keep int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWriteAt, f.shortKeep = n, keep
	return f
}

// FailSyncAt scripts the nth (1-based) Sync call to fail with
// ErrInjectedSync.
func (f *FaultFS) FailSyncAt(n int64) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncAt = n
	return f
}

// CrashAtByte kills the filesystem after budget bytes have been
// written across all files: the tail of the write that crosses the
// budget is discarded and every later operation fails with ErrCrashed,
// simulating power loss at an arbitrary byte offset.
func (f *FaultFS) CrashAtByte(budget int64) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = budget
	return f
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// BytesWritten reports the total bytes admitted to disk so far. A crash
// sweep runs the workload once fault-free to learn the byte range, then
// replays it with CrashAtByte at every offset in that range.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesSeen
}

// Writes reports the Write calls seen so far, so a test can script the
// next write relative to the current count.
func (f *FaultFS) Writes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writesSeen
}

// Syncs reports the Sync calls seen so far.
func (f *FaultFS) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncsSeen
}

// checkAlive fails every operation after the crash point.
func (f *FaultFS) checkAlive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// admitWrite decides the fate of a write of n bytes: how many bytes
// reach disk and which error (if any) the write reports.
func (f *FaultFS) admitWrite(n int) (keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.writesSeen++
	if f.writesSeen == f.shortWriteAt {
		keep = f.shortKeep
		if keep > n {
			keep = n
		}
		f.bytesSeen += int64(keep)
		return keep, fmt.Errorf("%w (%d of %d bytes)", ErrInjectedWrite, keep, n)
	}
	if f.budget >= 0 && f.budget < int64(n) {
		keep = int(f.budget)
		f.budget = 0
		f.crashed = true
		f.bytesSeen += int64(keep)
		return keep, ErrCrashed
	}
	if f.budget >= 0 {
		f.budget -= int64(n)
	}
	f.bytesSeen += int64(n)
	return n, nil
}

// admitSync decides whether a Sync call succeeds.
func (f *FaultFS) admitSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncsSeen++
	if f.syncsSeen == f.failSyncAt {
		return ErrInjectedSync
	}
	return nil
}

// Create implements durable.FS.
func (f *FaultFS) Create(name string) (durable.File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Open implements durable.FS. Reads are not perturbed: recovery reads
// whatever the faults let reach disk.
func (f *FaultFS) Open(name string) (durable.File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	return f.inner.Open(name)
}

// ReadDir implements durable.FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Rename implements durable.FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements durable.FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Truncate implements durable.FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// MkdirAll implements durable.FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// SyncDir implements durable.FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.admitSync(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies the filesystem's write/sync faults to one file.
type faultFile struct {
	fs    *FaultFS
	inner durable.File
}

// Read implements durable.File.
func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

// Write implements durable.File: the injector decides how many bytes
// reach the underlying file and what error the caller sees.
func (f *faultFile) Write(p []byte) (int, error) {
	keep, ferr := f.fs.admitWrite(len(p))
	n := 0
	if keep > 0 {
		var werr error
		n, werr = f.inner.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}

// Sync implements durable.File.
func (f *faultFile) Sync() error {
	if err := f.fs.admitSync(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements durable.File. Closing is allowed even after a
// crash so tests can release file handles.
func (f *faultFile) Close() error { return f.inner.Close() }
