package faults

import (
	"context"
	"strings"
	"testing"
	"time"

	"exlengine/internal/dispatch"
	"exlengine/internal/exlerr"
	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// ok is a Runner that always succeeds.
func ok(ctx context.Context, fr dispatch.Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
	return map[string]*model.Cube{}, nil
}

func TestInjectErrorMatchesFragmentAttemptTarget(t *testing.T) {
	in := NewInjector(
		Fault{Fragment: 1, Attempt: 2, Target: ops.TargetSQL, Kind: Error, Class: exlerr.Transient},
	)
	run := in.Middleware()(ok)

	// Non-matching calls pass through.
	for _, fr := range []dispatch.Fragment{
		{Index: 0, Attempt: 2, Target: ops.TargetSQL},
		{Index: 1, Attempt: 1, Target: ops.TargetSQL},
		{Index: 1, Attempt: 2, Target: ops.TargetETL},
	} {
		if _, err := run(context.Background(), fr, nil); err != nil {
			t.Fatalf("fault fired on non-matching %+v: %v", fr, err)
		}
	}
	// The matching call fires once.
	_, err := run(context.Background(), dispatch.Fragment{Index: 1, Attempt: 2, Target: ops.TargetSQL}, nil)
	if err == nil || exlerr.ClassOf(err) != exlerr.Transient {
		t.Fatalf("err = %v, want injected transient", err)
	}
	// And never again.
	if _, err := run(context.Background(), dispatch.Fragment{Index: 1, Attempt: 2, Target: ops.TargetSQL}, nil); err != nil {
		t.Fatalf("fault fired twice: %v", err)
	}
	fired := in.Fired()
	if len(fired) != 1 || fired[0].Fragment != 1 || fired[0].Attempt != 2 || fired[0].Target != ops.TargetSQL {
		t.Errorf("fired log = %+v", fired)
	}
}

func TestInjectPanic(t *testing.T) {
	in := NewInjector(Fault{Fragment: AnyFragment, Kind: Panic})
	run := in.Middleware()(ok)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		if !strings.Contains(r.(string), "injected panic") {
			t.Errorf("panic value = %v", r)
		}
	}()
	_, _ = run(context.Background(), dispatch.Fragment{Index: 3, Attempt: 1, Target: ops.TargetFrame}, nil)
}

func TestInjectDelayRespectsCancellation(t *testing.T) {
	in := NewInjector(Fault{Fragment: AnyFragment, Kind: Delay, Delay: time.Hour})
	run := in.Middleware()(ok)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := run(ctx, dispatch.Fragment{Index: 0, Attempt: 1}, nil)
	if !exlerr.IsCancellation(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if time.Since(start) > time.Second {
		t.Error("delay fault ignored cancellation")
	}
}

func TestTransientOnce(t *testing.T) {
	in := TransientOnce(2)
	run := in.Middleware()(ok)
	if _, err := run(context.Background(), dispatch.Fragment{Index: 2, Attempt: 1}, nil); err == nil {
		t.Fatal("fault must fire on fragment 2, attempt 1")
	}
	if _, err := run(context.Background(), dispatch.Fragment{Index: 2, Attempt: 2}, nil); err != nil {
		t.Fatalf("retry must succeed: %v", err)
	}
}
