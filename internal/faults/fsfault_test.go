package faults

import (
	"errors"
	"testing"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/model"
	"exlengine/internal/store/durable"
)

func faultSchema() model.Schema {
	return model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v")
}

func faultCube(t *testing.T, v float64) *model.Cube {
	t.Helper()
	c := model.NewCube(faultSchema())
	if err := c.Put([]model.Value{model.Per(model.NewAnnual(2019))}, v); err != nil {
		t.Fatal(err)
	}
	return c
}

// expectFatal asserts err is a typed exlerr error of class Fatal that
// wraps cause — the contract every injected disk fault must satisfy:
// typed errors, never panics or silent loss.
func expectFatal(t *testing.T, err, cause error) {
	t.Helper()
	if err == nil {
		t.Fatal("injected fault produced no error")
	}
	var te *exlerr.Error
	if !errors.As(err, &te) {
		t.Fatalf("fault error %v is not a typed *exlerr.Error", err)
	}
	if te.Class != exlerr.Fatal {
		t.Fatalf("fault error class = %v, want Fatal", te.Class)
	}
	if cause != nil && !errors.Is(err, cause) {
		t.Fatalf("fault error %v does not wrap %v", err, cause)
	}
}

// TestShortWriteSurfacesTypedError scripts a short write under a commit
// and checks the store reports a typed Fatal error, fails subsequent
// writes fast, keeps serving reads, and recovers cleanly on reopen.
func TestShortWriteSurfacesTypedError(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(durable.OSFS{})
	st, err := durable.Open(dir, durable.WithFS(fs), durable.WithCompactAfter(-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(faultCube(t, 1), time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}

	fs.ShortWriteAt(fs.Writes()+1, 2) // next write persists 2 bytes and fails
	err = st.Put(faultCube(t, 2), time.Unix(2, 0))
	expectFatal(t, err, ErrInjectedWrite)

	// The store is poisoned for writes...
	err = st.Put(faultCube(t, 3), time.Unix(3, 0))
	expectFatal(t, err, nil)
	if !errors.Is(err, durable.ErrFailed) {
		t.Fatalf("post-fault write error %v does not wrap ErrFailed", err)
	}
	// ...but reads keep serving the in-memory state.
	c, ok := st.Get("A")
	if !ok {
		t.Fatal("reads must survive a poisoned store")
	}
	if v, _ := c.Get([]model.Value{model.Per(model.NewAnnual(2019))}); v != 1 {
		t.Fatalf("read value = %v, want 1", v)
	}
	st.Close()

	// Reopen without faults: the acknowledged commit survives, the torn
	// append does not.
	st2, err := durable.Open(dir)
	if err != nil {
		t.Fatalf("reopen after short write: %v", err)
	}
	defer st2.Close()
	if g := st2.Generation(); g != 1 {
		t.Fatalf("recovered generation = %d, want 1", g)
	}
	if st2.Recovery().TruncatedRecords != 1 {
		t.Fatalf("recovery = %+v, want one truncated record", st2.Recovery())
	}
	if err := st2.Put(faultCube(t, 4), time.Unix(4, 0)); err != nil {
		t.Fatalf("store not writable after recovery: %v", err)
	}
}

// TestFsyncFaultSurfacesTypedError scripts an fsync failure and checks
// the same taxonomy: typed Fatal error, sticky poisoning, clean reopen.
func TestFsyncFaultSurfacesTypedError(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(durable.OSFS{})
	st, err := durable.Open(dir, durable.WithFS(fs), durable.WithCompactAfter(-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(faultCube(t, 1), time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}

	fs.FailSyncAt(fs.Syncs() + 1)
	err = st.Put(faultCube(t, 2), time.Unix(2, 0))
	expectFatal(t, err, ErrInjectedSync)

	err = st.Put(faultCube(t, 3), time.Unix(3, 0))
	expectFatal(t, err, nil)
	if !errors.Is(err, durable.ErrFailed) {
		t.Fatalf("post-fault write error %v does not wrap ErrFailed", err)
	}
	st.Close()

	// The unacknowledged record reached the file before the failed
	// fsync, so recovery may keep it — but never less than the
	// acknowledged prefix, and never a torn state.
	st2, err := durable.Open(dir)
	if err != nil {
		t.Fatalf("reopen after fsync fault: %v", err)
	}
	defer st2.Close()
	g := st2.Generation()
	if g < 1 || g > 2 {
		t.Fatalf("recovered generation = %d, want 1 or 2", g)
	}
	c, _ := st2.Get("A")
	if v, _ := c.Get([]model.Value{model.Per(model.NewAnnual(2019))}); v != float64(g) {
		t.Fatalf("recovered value %v at generation %d", v, g)
	}
}

// TestCrashedFSFailsEverything checks post-crash operations all fail
// with ErrCrashed and a crashed Open reports a typed error.
func TestCrashedFSFailsEverything(t *testing.T) {
	fs := NewFaultFS(durable.OSFS{}).CrashAtByte(0)
	dir := t.TempDir()
	_, err := durable.Open(dir, durable.WithFS(fs))
	if err == nil {
		t.Fatal("Open over a crashed filesystem must fail")
	}
	expectFatal(t, err, ErrCrashed)
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after the budget was consumed")
	}
	if _, err := fs.Create(dir + "/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create after crash = %v", err)
	}
	if _, err := fs.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadDir after crash = %v", err)
	}
	if err := fs.Rename(dir+"/a", dir+"/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename after crash = %v", err)
	}
}

// TestFaultFSTransparent checks the zero configuration injects nothing.
func TestFaultFSTransparent(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(durable.OSFS{})
	st, err := durable.Open(dir, durable.WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if err := st.Put(faultCube(t, float64(k)), time.Unix(int64(k), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Crashed() {
		t.Fatal("transparent FaultFS crashed")
	}
	if fs.BytesWritten() == 0 || fs.Writes() == 0 || fs.Syncs() == 0 {
		t.Fatal("accounting did not run")
	}
}
