// Package faults is a deterministic fault-injection harness for the
// fault-tolerant dispatcher: an Injector wraps fragment execution (as
// dispatch middleware) and fires scripted or seeded faults — classified
// errors, panics, or delays — at chosen fragment indices and attempt
// numbers. Runs are reproducible: the same fault plan (or the same seed)
// always perturbs the same attempts, so degraded executions can be
// asserted against the chase solution in tests.
package faults

import (
	"context"
	"fmt"
	"sync"
	"time"

	"exlengine/internal/dispatch"
	"exlengine/internal/etl"
	"exlengine/internal/exlerr"
	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// Kind is the kind of perturbation a fault applies.
type Kind int

// Fault kinds.
const (
	// Error makes the attempt fail with a classified error.
	Error Kind = iota
	// Panic makes the attempt panic, exercising panic isolation.
	Panic
	// Delay stalls the attempt before running it (for timeout testing).
	Delay
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AnyFragment matches every fragment index.
const AnyFragment = -1

// Fault is one scripted perturbation. A fault fires at most once.
type Fault struct {
	// Fragment is the fragment index to hit, or AnyFragment.
	Fragment int
	// Attempt is the 1-based attempt number to hit; 0 means any attempt.
	Attempt int
	// Target restricts the fault to attempts on one engine; empty means
	// any target.
	Target ops.Target
	// Kind selects the perturbation.
	Kind Kind
	// Class classifies the injected error (Error kind only).
	Class exlerr.Class
	// Delay is the stall duration (Delay kind only).
	Delay time.Duration
}

// Fired records one fault that actually fired.
type Fired struct {
	Fault    Fault
	Fragment int
	Attempt  int
	Target   ops.Target
}

// Injector wraps target-engine execution with scripted faults.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	used   []bool
	fired  []Fired
}

// NewInjector builds an injector firing the given faults, each at most
// once, in declaration order (the first matching unfired fault wins).
func NewInjector(faults ...Fault) *Injector {
	return &Injector{faults: faults, used: make([]bool, len(faults))}
}

// TransientOnce is the canonical crosscheck injector: exactly one
// transient error on the first attempt of the chosen fragment. Pick the
// fragment deterministically from a seed with fragment = seed % plan size.
func TransientOnce(fragment int) *Injector {
	return NewInjector(Fault{Fragment: fragment, Attempt: 1, Kind: Error, Class: exlerr.Transient})
}

// Fired returns the faults that fired, in firing order.
func (in *Injector) Fired() []Fired {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fired(nil), in.fired...)
}

// take claims the first unfired fault matching the attempt, if any.
func (in *Injector) take(fr dispatch.Fragment) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if in.used[i] {
			continue
		}
		if f.Fragment != AnyFragment && f.Fragment != fr.Index {
			continue
		}
		if f.Attempt != 0 && f.Attempt != fr.Attempt {
			continue
		}
		if f.Target != "" && f.Target != fr.Target {
			continue
		}
		in.used[i] = true
		in.fired = append(in.fired, Fired{Fault: f, Fragment: fr.Index, Attempt: fr.Attempt, Target: fr.Target})
		return f, true
	}
	return Fault{}, false
}

// Middleware returns the dispatch middleware applying the injector's
// faults. Delay faults respect context cancellation.
func (in *Injector) Middleware() dispatch.Middleware {
	return func(next dispatch.Runner) dispatch.Runner {
		return func(ctx context.Context, fr dispatch.Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
			f, ok := in.take(fr)
			if !ok {
				return next(ctx, fr, snap)
			}
			switch f.Kind {
			case Error:
				return nil, exlerr.New(f.Class,
					fmt.Errorf("faults: injected %s error on fragment %d attempt %d (%s)", f.Class, fr.Index, fr.Attempt, fr.Target))
			case Panic:
				panic(fmt.Sprintf("faults: injected panic on fragment %d attempt %d (%s)", fr.Index, fr.Attempt, fr.Target))
			case Delay:
				t := time.NewTimer(f.Delay)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return next(ctx, fr, snap)
			default:
				return nil, fmt.Errorf("faults: unknown fault kind %v", f.Kind)
			}
		}
	}
}

// PanicETLStep installs an etl step hook that panics the first time the
// named step runs (any step when name is empty), simulating a crashing
// user-defined step inside the streaming runtime. The returned restore
// function removes the hook; callers must invoke it.
func PanicETLStep(stepName string) (restore func()) {
	var once sync.Once
	etl.SetStepHook(func(flowID, step string) {
		if stepName != "" && step != stepName {
			return
		}
		fire := false
		once.Do(func() { fire = true })
		if fire {
			panic(fmt.Sprintf("faults: injected panic in ETL step %s of flow %s", step, flowID))
		}
	})
	return func() { etl.SetStepHook(nil) }
}
