package exlengine

// Benchmark harness: one benchmark per experiment of EXPERIMENTS.md.
// The paper (an industrial experience paper) publishes no numeric tables;
// E1-E5 regenerate its artifacts (tgds, SQL, R/Matlab, ETL flows, the
// Figure 2 end-to-end run) and E6-E10 measure the performance properties
// its claims imply. `go test -bench=. -benchmem` runs them all;
// `cmd/exlbench` prints the same experiments as human-readable tables.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"exlengine/internal/chase"
	"exlengine/internal/engine"
	"exlengine/internal/etl"
	"exlengine/internal/exl"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/matlabgen"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/rgen"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
	"exlengine/internal/store"
	"exlengine/internal/workload"
)

func mustAnalyze(b *testing.B, src string) *exl.Analyzed {
	b.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func mustCompile(b *testing.B, src string) *mapping.Mapping {
	b.Helper()
	m, err := mapping.Generate(mustAnalyze(b, src))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkE1_MappingGeneration measures the Section 4.1 pipeline: parse,
// analyze, normalize, generate tgds and fuse, for the paper's GDP program.
func BenchmarkE1_MappingGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := exl.Parse(workload.GDPProgram)
		if err != nil {
			b.Fatal(err)
		}
		a, err := exl.Analyze(prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mapping.Generate(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_SQLTranslation measures tgd -> SQL generation (Section 5.1).
func BenchmarkE2_SQLTranslation(b *testing.B) {
	m := mustCompile(b, workload.GDPProgram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgen.Translate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_FrameTranslation measures tgd -> frame IR -> R and Matlab
// source generation (Section 5.2).
func BenchmarkE3_FrameTranslation(b *testing.B) {
	m := mustCompile(b, workload.GDPProgram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgen.Translate(m); err != nil {
			b.Fatal(err)
		}
		if _, err := matlabgen.Translate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_ETLFlowGeneration measures tgd -> ETL job generation
// (Section 5.3 / Figure 1).
func BenchmarkE4_ETLFlowGeneration(b *testing.B) {
	m := mustCompile(b, workload.GDPProgram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := etl.Translate(m, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_EndToEnd measures the complete Figure 2 pipeline:
// determination, partitioning, mixed-target dispatch and storage.
func BenchmarkE5_EndToEnd(b *testing.B) {
	data := workload.GDPSource(workload.GDPConfig{Days: 1000, Regions: 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.WithParallelDispatch())
		if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
			b.Fatal(err)
		}
		t0 := time.Unix(0, 0)
		for _, name := range []string{"PDR", "RGDPPC"} {
			if err := eng.PutCube(data[name], t0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Run(context.Background(), RunAt(t0)); err != nil {
			b.Fatal(err)
		}
	}
}

func runTarget(b *testing.B, target ops.Target, m *mapping.Mapping, data workload.Data) map[string]*model.Cube {
	b.Helper()
	switch target {
	case ops.TargetChase:
		sol, err := chase.New(m).Solve(chase.Instance(data))
		if err != nil {
			b.Fatal(err)
		}
		return sol
	case ops.TargetSQL:
		db := sqlengine.NewDB()
		for _, name := range m.Elementary {
			if err := db.LoadCube(data[name]); err != nil {
				b.Fatal(err)
			}
		}
		script, err := sqlgen.Translate(m)
		if err != nil {
			b.Fatal(err)
		}
		if err := sqlgen.Execute(script, db); err != nil {
			b.Fatal(err)
		}
		out := make(map[string]*model.Cube)
		for _, rel := range m.Derived {
			c, err := db.ExtractCube(m.Schemas[rel])
			if err != nil {
				b.Fatal(err)
			}
			out[rel] = c
		}
		return out
	case ops.TargetETL:
		job, err := etl.Translate(m, "bench")
		if err != nil {
			b.Fatal(err)
		}
		out, err := etl.Run(job, m, data)
		if err != nil {
			b.Fatal(err)
		}
		return out
	case ops.TargetFrame:
		script, err := frame.Translate(m)
		if err != nil {
			b.Fatal(err)
		}
		out, err := frame.Execute(script, m, data)
		if err != nil {
			b.Fatal(err)
		}
		return out
	}
	b.Fatalf("unknown target %s", target)
	return nil
}

// BenchmarkE6_TargetComparison runs the full GDP program on every target
// over growing inputs: the paper's interchangeability claim, measured.
func BenchmarkE6_TargetComparison(b *testing.B) {
	m := mustCompile(b, workload.GDPProgram)
	for _, days := range []int{100, 1000, 10000} {
		data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 20})
		for _, target := range ops.AllTargets {
			b.Run(fmt.Sprintf("%s/days=%d", target, days), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out := runTarget(b, target, m, data)
					if out["PCHNG"] == nil {
						b.Fatal("missing PCHNG")
					}
				}
			})
		}
	}
}

// BenchmarkE7_TranslateVsExecute contrasts offline translation cost with
// online calculation cost (Section 6's "does not affect the global elapsed
// time").
func BenchmarkE7_TranslateVsExecute(b *testing.B) {
	m := mustCompile(b, workload.GDPProgram)
	data := workload.GDPSource(workload.GDPConfig{Days: 10000, Regions: 20})
	b.Run("translate-all-targets", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sqlgen.Translate(m); err != nil {
				b.Fatal(err)
			}
			if _, err := rgen.Translate(m); err != nil {
				b.Fatal(err)
			}
			if _, err := matlabgen.Translate(m); err != nil {
				b.Fatal(err)
			}
			if _, err := etl.Translate(m, "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute-sql-10000d", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runTarget(b, ops.TargetSQL, m, data)
		}
	})
}

// BenchmarkE8_IncrementalVsFull measures the determination engine's
// incremental recalculation against a full run over a 32-program catalog.
func BenchmarkE8_IncrementalVsFull(b *testing.B) {
	const nProg, months = 32, 240 // series length chosen so one full run is ~100ms
	programs := make(map[string]string, nProg)
	data := workload.Data{}
	for i := 0; i < nProg; i++ {
		programs[fmt.Sprintf("p%02d", i)] = fmt.Sprintf(`
cube S%02d(t: month) measure v
A%02d := S%02d * 2
B%02d := movavg(A%02d, 3)
C%02d := (B%02d - shift(B%02d, 1)) * 100 / shift(B%02d, 1)
`, i, i, i, i, i, i, i, i, i)
		data[fmt.Sprintf("S%02d", i)] = workload.Series(workload.SeriesConfig{
			Name: fmt.Sprintf("S%02d", i), Freq: model.Monthly, N: months,
			Seed: int64(i + 1), Level: 100, Trend: 0.5, SeasonAmp: 5, NoiseAmp: 1,
		})
	}
	build := func(opts ...engine.Option) *engine.Engine {
		eng := engine.New(opts...)
		for i := 0; i < nProg; i++ {
			name := fmt.Sprintf("p%02d", i)
			if err := eng.RegisterProgram(name, programs[name]); err != nil {
				b.Fatal(err)
			}
		}
		for _, c := range data {
			if err := eng.PutCube(c, time.Unix(0, 0)); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}
	b.Run("full", func(b *testing.B) {
		eng := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), RunAt(time.Unix(int64(i+1), 0))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-parallel", func(b *testing.B) {
		// Component-aware partitioning + wave-parallel dispatch: the 32
		// independent programs overlap (Section 6's parallelization).
		eng := build(engine.WithParallelDispatch())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), RunAt(time.Unix(int64(i+1), 0))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental-1-leaf", func(b *testing.B) {
		eng := build()
		if _, err := eng.Run(context.Background(), RunAt(time.Unix(1, 0))); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), RunChanged("S00"), RunAt(time.Unix(int64(i+2), 0))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9_FusionAblation compares chasing the fused mapping (one tgd
// per statement) with the normalized one (one tgd per operator, auxiliary
// cubes materialized). The program is a tuple-level scalar chain, the case
// where normalization materializes several full-size auxiliary cubes.
func BenchmarkE9_FusionAblation(b *testing.B) {
	const chainProgram = `
cube A(t: day) measure v
B := ((((A * 2) + A) / 3 - A) * 100) / (A + 1)
`
	fused, err := mapping.Generate(mustAnalyze(b, chainProgram))
	if err != nil {
		b.Fatal(err)
	}
	norm, err := mapping.GenerateNormalized(mustAnalyze(b, chainProgram))
	if err != nil {
		b.Fatal(err)
	}
	data := workload.Data{"A": workload.Series(workload.SeriesConfig{
		Name: "A", Freq: model.Daily, N: 100000, Level: 50, Trend: 0.01, NoiseAmp: 1, Seed: 9,
	})}
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := chase.New(fused).Solve(chase.Instance(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("normalized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := chase.New(norm).Solve(chase.Instance(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Section 6 variant: auxiliaries as relational views on the SQL target.
	runSQL := func(b *testing.B, opts sqlgen.Options) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := sqlengine.NewDB()
			for _, name := range norm.Elementary {
				if err := db.LoadCube(data[name]); err != nil {
					b.Fatal(err)
				}
			}
			script, err := sqlgen.TranslateWith(norm, opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := sqlgen.Execute(script, db); err != nil {
				b.Fatal(err)
			}
			if _, err := db.ExtractCube(norm.Schemas["B"]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("normalized-sql-tables", func(b *testing.B) { runSQL(b, sqlgen.Options{}) })
	b.Run("normalized-sql-views", func(b *testing.B) { runSQL(b, sqlgen.Options{AuxAsViews: true}) })
}

// BenchmarkE10_ChaseScaling measures the stratified chase over growing
// source instances.
func BenchmarkE10_ChaseScaling(b *testing.B) {
	m := mustCompile(b, workload.GDPProgram)
	for _, rows := range []int{1000, 10000, 100000} {
		data := workload.GDPSource(workload.GDPConfig{Days: rows / 20, Regions: 20})
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.New(m).Solve(chase.Instance(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11_ConcurrentRuns measures throughput of N goroutines
// re-running the compiled GDP program against one shared store — the
// workload the zero-copy read path is built for. Every iteration is a
// full run (snapshot, dispatch, persist) plus a read-back of all cubes;
// the store hands out shared frozen references, so worker count should
// scale throughput instead of multiplying clone traffic.
func BenchmarkE11_ConcurrentRuns(b *testing.B) {
	data := workload.GDPSource(workload.GDPConfig{Days: 1000, Regions: 10})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := engine.New(engine.WithParallelDispatch())
			if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
				b.Fatal(err)
			}
			for _, name := range []string{"PDR", "RGDPPC"} {
				if err := eng.PutCube(data[name], time.Unix(0, 0)); err != nil {
					b.Fatal(err)
				}
			}
			asOf := time.Unix(1, 0)
			b.ReportAllocs()
			b.ResetTimer()
			runs, err := workload.RunConcurrently(context.Background(),
				workload.ConcurrentConfig{Workers: workers, Iters: b.N},
				func(ctx context.Context) error {
					if _, err := eng.Run(ctx, engine.RunAt(asOf)); err != nil {
						return err
					}
					for _, name := range eng.CubeNames() {
						eng.Cube(name)
					}
					return nil
				})
			if err != nil {
				b.Fatal(err)
			}
			if runs != workers*b.N {
				b.Fatalf("completed %d runs, want %d", runs, workers*b.N)
			}
		})
	}
}

// BenchmarkStoreSnapshot pins the tentpole property: Snapshot and Get
// return shared frozen references, so read cost must not scale with cube
// size. Before the zero-copy change both deep-cloned every cube and the
// 100000-row case was ~1000x the 100-row one.
func BenchmarkStoreSnapshot(b *testing.B) {
	for _, rows := range []int{100, 10000, 100000} {
		st := store.New()
		c := workload.Series(workload.SeriesConfig{
			Name: "S", Freq: model.Daily, N: rows, Level: 100, Trend: 0.1, NoiseAmp: 1, Seed: 7,
		})
		if err := st.Put(c, time.Unix(0, 0)); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, _ := st.SnapshotVersioned()
				if snap["S"] == nil {
					b.Fatal("missing cube")
				}
				if _, ok := st.Get("S"); !ok {
					b.Fatal("missing cube")
				}
			}
		})
	}
}

// BenchmarkCompileCache contrasts a cold compile (parse + analyze +
// generate + fuse) with a cache hit (one fingerprint hash and a map
// lookup) for the GDP program.
func BenchmarkCompileCache(b *testing.B) {
	ctx := context.Background()
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine.ResetCompileCache()
			if _, err := engine.CompileCached(ctx, workload.GDPProgram, nil, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		engine.ResetCompileCache()
		if _, err := engine.CompileCached(ctx, workload.GDPProgram, nil, true); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.CompileCached(ctx, workload.GDPProgram, nil, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDispatchFaultFree measures the cost of the fault-tolerance
// layer — context plumbing, panic recovery frames, attempt accounting and
// the per-run report — when nothing fails. The paper's dispatch claim
// (Section 6, companion to E7) is that orchestration machinery stays off
// the critical path: compare the "bare" dispatcher (no retries, no
// degradation) with the default fault-tolerant one on an identical
// fault-free run.
func BenchmarkDispatchFaultFree(b *testing.B) {
	data := workload.GDPSource(workload.GDPConfig{Days: 1000, Regions: 10})
	run := func(b *testing.B, opts ...engine.Option) {
		eng := engine.New(opts...)
		if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
			b.Fatal(err)
		}
		t0 := time.Unix(0, 0)
		for _, name := range []string{"PDR", "RGDPPC"} {
			if err := eng.PutCube(data[name], t0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), RunAt(t0)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, engine.WithoutDegradation(), engine.WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	})
	b.Run("faulttolerant", func(b *testing.B) {
		run(b)
	})
}

// BenchmarkTracedRun quantifies the cost of the observability layer on
// the same fault-free end-to-end run as BenchmarkDispatchFaultFree:
// "off" runs with no tracer and no metrics attached (spans reduce to two
// context lookups and must stay within noise, ≤5%, of the untraced
// dispatcher), "traced" records the full span tree and every counter on
// each iteration.
func BenchmarkTracedRun(b *testing.B) {
	data := workload.GDPSource(workload.GDPConfig{Days: 1000, Regions: 10})
	setup := func(b *testing.B, opts ...engine.Option) *engine.Engine {
		eng := engine.New(opts...)
		if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
			b.Fatal(err)
		}
		t0 := time.Unix(0, 0)
		for _, name := range []string{"PDR", "RGDPPC"} {
			if err := eng.PutCube(data[name], t0); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}
	t0 := time.Unix(0, 0)
	b.Run("off", func(b *testing.B) {
		eng := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), engine.RunAt(t0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tracer := obs.NewTracer()
		eng := setup(b, engine.WithTracer(tracer), engine.WithMetrics(obs.NewRegistry()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tracer.Reset()
			if _, err := eng.Run(context.Background(), engine.RunAt(t0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
